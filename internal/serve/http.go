package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// StatusClientClosedRequest is the (nginx-conventional) status for a
// job that failed because the client canceled it.
const StatusClientClosedRequest = 499

// Handler returns the ddserve HTTP API:
//
//	POST   /v1/jobs          submit a job (202 + status)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status
//	GET    /v1/jobs/{id}/result  terminal outcome (summary or mapped error)
//	DELETE /v1/jobs/{id}     cancel
//	GET    /healthz          liveness (always 200 while the process serves)
//	GET    /readyz           readiness (503 once draining or under pressure)
//	GET    /metrics          Prometheus text format
//
// Failure kinds map onto statuses the way ddsim maps them onto exit
// codes: deadline→504, budget and pressure→507, canceled→499,
// corruption and the rest→500. Load shedding answers 429 with
// Retry-After; drain, open circuit breakers and sustained memory
// pressure answer 503 with Retry-After.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(s, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(s, w, r)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		if s.Pressured() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "pressure\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.Handle("GET /metrics", obs.Handler(s.Metrics()))
	return mux
}

func handleSubmit(s *Server, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Caps.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	spec, circ, err := DecodeJobRequest(body, s.cfg.Caps)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	st, err := s.Submit(spec, circ)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// handleResult renders a terminal job as its summary (done) or its
// failure mapped to an HTTP status; non-terminal jobs answer 202 so
// clients can poll the same URL until the job settles.
func handleResult(s *Server, w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, st)
	case StateFailed:
		writeJSON(w, statusForKind(st.ErrorKind), st)
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, st)
	}
}

// statusForKind maps a recorded failure kind to the response status —
// the HTTP face of ddsim's exit-code table (3 deadline, 4 budget,
// 5 canceled, 6 panic/injected, 7 corruption).
func statusForKind(kind string) int {
	switch kind {
	case "deadline":
		return http.StatusGatewayTimeout // 504
	case "budget", "pressure":
		return http.StatusInsufficientStorage // 507
	case "canceled":
		return StatusClientClosedRequest // 499
	case "corruption", "checkpoint-write", "panic", "injected":
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

func writeRequestError(w http.ResponseWriter, err error) {
	var re *RequestError
	if errors.As(err, &re) {
		if re.RetryAfter > 0 {
			// Round up, never down: truncating a sub-second or fractional
			// RetryAfter shortens the advertised backoff (500ms would
			// render as 0 and invite an immediate retry stampede), so
			// 1.5s becomes 2 and anything below a second becomes 1.
			secs := int64((re.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		writeError(w, re.Status, re.Msg)
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
