package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/obs"
	"repro/internal/serve/retry"
)

// test-only accessors for internal lifecycle flags.
func (s *Server) testKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

func (s *Server) testDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// fastRetry is a test policy with no real backoff.
var fastRetry = retry.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond, Jitter: 0, Attempts: 3}

func testConfig(dir string) Config {
	return Config{
		Dir:             dir,
		Workers:         2,
		Queue:           16,
		CheckpointEvery: 16,
		Retry:           fastRetry,
		Registry:        obs.NewRegistry(),
	}
}

// testCircuit builds a native-format text of the given width and
// length whose state stays small (Clifford+T pattern).
func testCircuit(n, gateCount int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "qubits %d\n", n)
	for i := 0; i < gateCount; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&b, "h %d\n", i%n)
		case 1:
			fmt.Fprintf(&b, "cx %d %d\n", i%n, (i+1)%n)
		case 2:
			fmt.Fprintf(&b, "t %d\n", (i+2)%n)
		}
	}
	return b.String()
}

func submitJSON(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	resp.Body.Close()
	return resp, st
}

func waitTerminal(t *testing.T, s *Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return *st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServeHappyPathHTTP(t *testing.T) {
	s, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	body := `{"qasm":` + jsonStr(bellQASM) + `,"shots":64,"seed":7,"client":"alice"}`
	resp, st := submitJSON(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	final := waitTerminal(t, s, st.ID, 10*time.Second)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if final.Summary == nil || final.Summary.Norm < 0.999 || final.Summary.Norm > 1.001 {
		t.Fatalf("summary = %+v", final.Summary)
	}
	// Bell state: only 00 and 11 outcomes.
	total := 0
	for outcome, count := range final.Summary.Samples {
		if outcome != "00" && outcome != "11" {
			t.Fatalf("impossible Bell outcome %q", outcome)
		}
		total += count
	}
	if total != 64 {
		t.Fatalf("sampled %d outcomes, want 64", total)
	}

	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", rr.StatusCode)
	}

	for _, ep := range []string{"/healthz", "/readyz"} {
		hr, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", ep, hr.StatusCode)
		}
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	expo, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"serve_jobs_admitted_total", "serve_jobs_done_total", "pool_queue_depth"} {
		if !strings.Contains(string(expo), series) {
			t.Fatalf("metrics exposition missing %s:\n%s", series, expo)
		}
	}
}

// jsonStr JSON-quotes a string (tiny local helper to keep test bodies
// readable).
func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// stalledServer starts a server whose jobs block inside the first
// durable checkpoint until release is closed.
func stalledServer(t *testing.T, dir string, mut func(*Config)) (*Server, chan string, chan struct{}) {
	t.Helper()
	cfg := testConfig(dir)
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits := make(chan string, 64)
	release := make(chan struct{})
	s.afterCheckpoint = func(id string, gate int) {
		select {
		case hits <- id:
		default:
		}
		<-release
	}
	return s, hits, release
}

func TestServeQueueOverflowReturns429(t *testing.T) {
	s, hits, release := stalledServer(t, t.TempDir(), func(c *Config) {
		c.Workers = 1
		c.Queue = 1
		c.CheckpointEvery = 4
		c.PerClientActive = -1 // exercise the queue bound, not the quota
	})
	defer func() {
		close(release)
		s.Kill()
	}()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	long := `{"circuit":` + jsonStr(testCircuit(6, 200)) + `}`
	resp, _ := submitJSON(t, ts, long) // runs, stalls at its first checkpoint
	if resp.StatusCode != 202 {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	<-hits
	resp, _ = submitJSON(t, ts, long) // fills the queue
	if resp.StatusCode != 202 {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	resp, _ = submitJSON(t, ts, long) // over capacity
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestServeCancelQueuedJobMapsTo499(t *testing.T) {
	s, hits, release := stalledServer(t, t.TempDir(), func(c *Config) {
		c.Workers = 1
		c.CheckpointEvery = 4
	})
	defer func() {
		close(release)
		s.Kill()
	}()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	long := `{"circuit":` + jsonStr(testCircuit(6, 200)) + `}`
	submitJSON(t, ts, long)
	<-hits
	_, queued := submitJSON(t, ts, long)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	st, _ := s.Status(queued.ID)
	if st.State != StateFailed || st.ErrorKind != "canceled" {
		t.Fatalf("cancelled job = %+v", st)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != StatusClientClosedRequest {
		t.Fatalf("result of cancelled job = %d, want 499", rr.StatusCode)
	}
}

func TestServeDeadlineMapsTo504(t *testing.T) {
	s, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	body := `{"circuit":` + jsonStr(testCircuit(16, 20000)) + `,"timeout_ms":1}`
	resp, st := submitJSON(t, ts, body)
	if resp.StatusCode != 202 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateFailed || final.ErrorKind != "deadline" {
		t.Fatalf("final = %+v", final)
	}
	if final.Attempt != 1 {
		t.Fatalf("deadline failure was retried (%d attempts); deadlines are non-retryable", final.Attempt)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("result = %d, want 504", rr.StatusCode)
	}
}

func TestServeBudgetRetriesThenMapsTo507(t *testing.T) {
	s, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// An entangling circuit that cannot fit in 8 nodes; the budget
	// failure is retryable, so the job burns all attempts and fails.
	body := `{"circuit":` + jsonStr(testCircuit(14, 600)) + `,"max_nodes":8}`
	resp, st := submitJSON(t, ts, body)
	if resp.StatusCode != 202 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateFailed || final.ErrorKind != "budget" {
		t.Fatalf("final = %+v", final)
	}
	if final.Attempt != fastRetry.MaxAttempts() {
		t.Fatalf("budget failure made %d attempts, want %d", final.Attempt, fastRetry.MaxAttempts())
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("result = %d, want 507", rr.StatusCode)
	}
}

func TestServeDrainParksRunningJobs(t *testing.T) {
	dir := t.TempDir()
	s, hits, release := stalledServer(t, dir, func(c *Config) {
		c.Workers = 1
		c.CheckpointEvery = 8
	})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	spec := `{"circuit":` + jsonStr(testCircuit(8, 400)) + `,"shots":8,"seed":11}`
	_, st := submitJSON(t, ts, spec)
	<-hits // running job has a durable checkpoint and is frozen in it

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.testDraining() {
		time.Sleep(time.Millisecond)
	}
	// Draining: not ready, and submissions bounce with 503.
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rr.StatusCode)
	}
	resp, _ := submitJSON(t, ts, spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}

	close(release) // let the stalled job observe the cancellation
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, _ := s.Status(st.ID)
	if got.State != StateParked {
		t.Fatalf("job after drain = %+v, want parked", got)
	}
	if got.Gate == 0 {
		t.Fatal("parked job has no checkpoint progress")
	}

	// A restart against the same journal finishes the parked job.
	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	final := waitTerminal(t, s2, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("parked job after restart = %+v", final)
	}
}

// TestServeCrashRecovery is the acceptance e2e: kill -9 the server
// mid-job, restart it on the same journal, and require every job to
// reach a terminal state exactly once with amplitudes identical to an
// uninterrupted run.
func TestServeCrashRecovery(t *testing.T) {
	const (
		nq    = 8
		gates = 240
		shots = 32
		seed  = 42
	)
	circText := testCircuit(nq, gates)

	// Uninterrupted reference run (plain core, same strategy).
	refCirc, err := circuit.ParseString(circText)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := core.Run(refCirc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refAmp := make([]complex128, 1<<nq)
	for i := range refAmp {
		refAmp[i] = refRes.State.Amplitude(uint64(i))
	}
	refSamples := map[string]int{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < shots; i++ {
		refSamples[fmt.Sprintf("%0*b", nq, refRes.State.SampleAll(rng))]++
	}

	dir := t.TempDir()
	s, hits, release := stalledServer(t, dir, func(c *Config) {
		c.Workers = 2
		c.CheckpointEvery = 16
	})
	spec := &JobSpec{Circuit: circText, Priority: "normal", Shots: shots, Seed: seed}
	circ, err := circuit.ParseString(circText)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		sp := *spec
		st, err := s.Submit(&sp, circ)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	// Two workers stall inside their first durable checkpoint; the
	// third job waits in the queue.
	stalled := map[string]bool{}
	stalled[<-hits] = true
	stalled[<-hits] = true
	if len(stalled) != 2 {
		t.Fatalf("expected two distinct stalled jobs, got %v", stalled)
	}

	// kill -9: journal writes freeze, contexts die, nothing terminal is
	// recorded.
	killDone := make(chan struct{})
	go func() {
		s.Kill()
		close(killDone)
	}()
	for !s.testKilled() {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-killDone

	for _, id := range ids {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s missing after kill", id)
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s despite the crash", id, st.State)
		}
	}

	// Restart on the same journal: every job must recover and finish.
	reg2 := obs.NewRegistry()
	cfg2 := testConfig(dir)
	cfg2.Registry = reg2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()

	for _, id := range ids {
		final := waitTerminal(t, s2, id, 60*time.Second)
		if final.State != StateDone {
			t.Fatalf("job %s after recovery = %+v", id, final)
		}
		if stalled[id] {
			if final.Attempt < 2 {
				t.Fatalf("stalled job %s finished on attempt %d; expected a resumed second attempt", id, final.Attempt)
			}
			if final.Gate != gates {
				t.Fatalf("job %s gate = %d, want %d", id, final.Gate, gates)
			}
		}
		// Amplitudes must be identical to the uninterrupted run.
		eng := dd.New()
		ck, err := core.LoadCheckpoint(s2.jn.resultPath(id), eng)
		if err != nil {
			t.Fatalf("load result %s: %v", id, err)
		}
		if ck.NextGate != gates {
			t.Fatalf("result %s covers %d gates, want %d", id, ck.NextGate, gates)
		}
		for i, want := range refAmp {
			if got := ck.State.Amplitude(uint64(i)); got != want {
				t.Fatalf("job %s amplitude[%d] = %v, want %v (diverged after recovery)", id, i, got, want)
			}
		}
		// And so must the deterministic samples.
		if len(final.Summary.Samples) != len(refSamples) {
			t.Fatalf("job %s samples = %v, want %v", id, final.Summary.Samples, refSamples)
		}
		for outcome, n := range refSamples {
			if final.Summary.Samples[outcome] != n {
				t.Fatalf("job %s samples = %v, want %v", id, final.Summary.Samples, refSamples)
			}
		}
	}

	// Exactly-once terminal accounting on the recovery server: three
	// recoveries, three dones, zero failures.
	snap := map[string]float64{}
	for _, m := range reg2.Snapshot() {
		snap[m.Name] = m.Value
	}
	if snap["serve_jobs_recovered_total"] != 3 {
		t.Fatalf("recovered = %v, want 3", snap["serve_jobs_recovered_total"])
	}
	if snap["serve_jobs_done_total"] != 3 {
		t.Fatalf("done = %v, want 3", snap["serve_jobs_done_total"])
	}
	if snap["serve_jobs_failed_total"] != 0 {
		t.Fatalf("failed = %v, want 0", snap["serve_jobs_failed_total"])
	}

	// A third generation sees only terminal jobs and re-runs nothing.
	s3, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Kill()
	for _, id := range ids {
		st, ok := s3.Status(id)
		if !ok || st.State != StateDone {
			t.Fatalf("job %s lost its terminal state across restarts: %+v", id, st)
		}
	}
}
