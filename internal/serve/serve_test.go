package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const bellQASM = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"

func TestDecodeJobRequest(t *testing.T) {
	caps := Caps{MaxQubits: 8, MaxGates: 100, MaxShots: 1000}
	cases := []struct {
		name    string
		body    string
		wantErr int // 0 = success
	}{
		{"native ok", `{"circuit":"qubits 2\nh 0\ncx 0 1\n"}`, 0},
		{"qasm ok", `{"qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"}`, 0},
		{"bad json", `{"circuit":`, 400},
		{"trailing data", `{"circuit":"qubits 1\nh 0\n"} extra`, 400},
		{"unknown field", `{"circuit":"qubits 1\nh 0\n","bogus":1}`, 400},
		{"neither source", `{"shots":5}`, 400},
		{"both sources", `{"circuit":"qubits 1\nh 0\n","qasm":"OPENQASM 2.0;\nqreg q[1];\nh q[0];\n"}`, 400},
		{"dynamic qasm", `{"qasm":"OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n"}`, 400},
		{"parse error", `{"circuit":"qubits 2\nfrobnicate 0\n"}`, 400},
		{"too wide", `{"circuit":"qubits 9\nh 0\n"}`, 400},
		{"no gates", `{"circuit":"qubits 2\n"}`, 400},
		{"bad priority", `{"circuit":"qubits 1\nh 0\n","priority":"urgent"}`, 400},
		{"bad strategy", `{"circuit":"qubits 1\nh 0\n","strategy":"psychic"}`, 400},
		{"negative shots", `{"circuit":"qubits 1\nh 0\n","shots":-1}`, 400},
		{"too many shots", `{"circuit":"qubits 1\nh 0\n","shots":1001}`, 400},
		{"negative timeout", `{"circuit":"qubits 1\nh 0\n","timeout_ms":-5}`, 400},
		{"strategies ok", `{"circuit":"qubits 2\nh 0\ncx 0 1\n","strategy":"k-operations","k":3}`, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, circ, err := DecodeJobRequest([]byte(c.body), caps)
			if c.wantErr == 0 {
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if spec == nil || circ == nil {
					t.Fatal("nil spec or circuit on success")
				}
				if spec.Priority == "" {
					t.Fatal("priority not normalised")
				}
				return
			}
			re, ok := err.(*RequestError)
			if !ok {
				t.Fatalf("decode = %v, want *RequestError(%d)", err, c.wantErr)
			}
			if re.Status != c.wantErr {
				t.Fatalf("status = %d (%s), want %d", re.Status, re.Msg, c.wantErr)
			}
		})
	}
}

func TestDecodeJobRequestBodyCap(t *testing.T) {
	big := `{"circuit":"` + strings.Repeat("x", 2048) + `"}`
	_, _, err := DecodeJobRequest([]byte(big), Caps{MaxBodyBytes: 1024})
	re, ok := err.(*RequestError)
	if !ok || re.Status != 413 {
		t.Fatalf("oversized body = %v, want 413", err)
	}
}

func TestDecodeGateCapCountsExpandedGates(t *testing.T) {
	// 30 gates through a repeat block; the cap sees the expansion.
	body := `{"circuit":"qubits 2\nrepeat 30\nh 0\nendrepeat\n"}`
	_, circ, err := DecodeJobRequest([]byte(body), Caps{MaxGates: 100})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(circ.Gates) != 30 {
		t.Fatalf("expanded to %d gates, want 30", len(circ.Gates))
	}
	if _, _, err = DecodeJobRequest([]byte(body), Caps{MaxGates: 29}); err == nil {
		t.Fatal("gate cap did not count expanded gates")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := breaker{threshold: 3, cooldown: time.Minute}
	now := time.Unix(1000, 0)
	if ok, _ := b.allow(now); !ok {
		t.Fatal("fresh breaker rejects")
	}
	b.onFailure(now)
	b.onFailure(now)
	if ok, _ := b.allow(now); !ok {
		t.Fatal("breaker opened below threshold")
	}
	b.onFailure(now) // third: opens
	ok, ra := b.allow(now)
	if ok {
		t.Fatal("breaker did not open at threshold")
	}
	if ra != time.Minute {
		t.Fatalf("retry-after = %v, want 1m", ra)
	}
	// Half-open after cooldown: admits, and one failure re-opens.
	later := now.Add(2 * time.Minute)
	if ok, _ := b.allow(later); !ok {
		t.Fatal("breaker still open after cooldown")
	}
	b.onFailure(later)
	if ok, _ := b.allow(later); ok {
		t.Fatal("half-open breaker did not re-open on failure")
	}
	// Success closes it fully.
	b.onSuccess()
	if ok, _ := b.allow(later); !ok {
		t.Fatal("breaker open after success")
	}
	b.onFailure(later)
	if ok, _ := b.allow(later); !ok {
		t.Fatal("single failure after close re-opened the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := breaker{}
	now := time.Now()
	for i := 0; i < 100; i++ {
		b.onFailure(now)
	}
	if ok, _ := b.allow(now); !ok {
		t.Fatal("disabled breaker opened")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	jn, err := openJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Circuit: "qubits 1\nh 0\n", Priority: "normal", Shots: 3}
	st := &JobStatus{ID: "j00000001", State: StateQueued, Client: "anon", Priority: "normal", NQubits: 1, Gates: 1}
	if err := jn.appendJob(spec, st); err != nil {
		t.Fatal(err)
	}
	st.State = StateDone
	if err := jn.saveState(st); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := jn.load()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v", skipped)
	}
	if len(entries) != 1 || entries[0].Status.State != StateDone || entries[0].Spec.Shots != 3 {
		t.Fatalf("round trip: %+v", entries)
	}
	next, err := jn.nextID()
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Fatalf("nextID = %d, want 2", next)
	}
}

func TestJournalQuarantinesDamage(t *testing.T) {
	dir := t.TempDir()
	jn, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := &JobStatus{ID: "j00000001", State: StateQueued, Client: "anon"}
	if err := jn.appendJob(&JobSpec{Circuit: "qubits 1\nh 0\n"}, good); err != nil {
		t.Fatal(err)
	}
	bad := &JobStatus{ID: "j00000002", State: StateQueued, Client: "anon"}
	if err := jn.appendJob(&JobSpec{Circuit: "qubits 1\nh 0\n"}, bad); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jn.statePath("j00000002"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := jn.load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Status.ID != "j00000001" {
		t.Fatalf("entries = %+v, want only the intact job", entries)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v, want one quarantined entry", skipped)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "j00000002.damaged")); err != nil {
		t.Fatalf("damaged dir not renamed aside: %v", err)
	}
	// IDs are never reused, even for quarantined jobs.
	next, err := jn.nextID()
	if err != nil {
		t.Fatal(err)
	}
	if next != 3 {
		t.Fatalf("nextID = %d, want 3", next)
	}
}

func TestStatusForKindMapping(t *testing.T) {
	want := map[string]int{
		"deadline":         504,
		"budget":           507,
		"canceled":         499,
		"corruption":       500,
		"checkpoint-write": 500,
		"panic":            500,
		"injected":         500,
		"anything-else":    500,
	}
	for kind, status := range want {
		if got := statusForKind(kind); got != status {
			t.Errorf("statusForKind(%q) = %d, want %d", kind, got, status)
		}
	}
}

func TestClientLabelCardinalityCap(t *testing.T) {
	m := newServeMetrics(nil)
	for i := 0; i < maxClientLabels; i++ {
		m.clientLabel(strings.Repeat("c", i+1))
	}
	if got := m.clientLabel("one-more"); got != "other" {
		t.Fatalf("overflow client labelled %q, want other", got)
	}
	// Existing mappings stay stable.
	if got := m.clientLabel("c"); got != "c" {
		t.Fatalf("known client remapped to %q", got)
	}
	if got := m.clientLabel(""); got != "other" {
		// "" maps to anon which is now over the cap; either way it must
		// not grow unbounded. Accept "other" here.
		t.Logf("anon over cap folded to %q", got)
	}
	if got := newServeMetrics(nil).clientLabel("weird client/id!"); got != "weird_client_id_" {
		t.Fatalf("sanitised label = %q", got)
	}
}

func TestStrategyForSpellsCanonicalNames(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{}, "sequential"},
		{JobSpec{Strategy: "k-operations"}, "k-operations(k=4)"},
		{JobSpec{Strategy: "k-operations", K: 7}, "k-operations(k=7)"},
		{JobSpec{Strategy: "max-size", SMax: 64}, "max-size(s=64)"},
		{JobSpec{Strategy: "adaptive"}, "adaptive(r=1)"},
		{JobSpec{Strategy: "combine-all"}, "combine-all"},
	}
	for _, c := range cases {
		st, err := StrategyFor(&c.spec)
		if err != nil {
			t.Fatalf("%+v: %v", c.spec, err)
		}
		if st.Name() != c.want {
			t.Errorf("StrategyFor(%+v).Name() = %q, want %q", c.spec, st.Name(), c.want)
		}
	}
}
