package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// journal is ddserve's write-ahead job store. Layout under root:
//
//	jobs/<id>/job.json    immutable spec, written before the job is
//	                      acknowledged (the WAL write)
//	jobs/<id>/state.json  lifecycle record, rewritten atomically on
//	                      every transition
//	jobs/<id>/ckpt.bin    latest DDCKPT2 resume checkpoint (periodic
//	                      and abort-time), written by core.SaveCheckpoint
//	jobs/<id>/result.bin  final state as a DDCKPT2 file, written before
//	                      the terminal "done" record
//
// Every file is installed with the temp-file + fsync + rename +
// parent-dir-sync dance, so after a crash each job directory holds a
// consistent prefix of its history: the journal never lies about what
// was acknowledged, only (at worst) forgets progress since the last
// checkpoint — which recovery re-runs.
type journal struct {
	root string
}

func openJournal(root string) (*journal, error) {
	if root == "" {
		return nil, errors.New("serve: journal dir required")
	}
	if err := os.MkdirAll(filepath.Join(root, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{root: root}, nil
}

func (j *journal) jobDir(id string) string     { return filepath.Join(j.root, "jobs", id) }
func (j *journal) specPath(id string) string   { return filepath.Join(j.jobDir(id), "job.json") }
func (j *journal) statePath(id string) string  { return filepath.Join(j.jobDir(id), "state.json") }
func (j *journal) ckptPath(id string) string   { return filepath.Join(j.jobDir(id), "ckpt.bin") }
func (j *journal) resultPath(id string) string { return filepath.Join(j.jobDir(id), "result.bin") }

// appendJob durably records a newly admitted job: directory, spec,
// then initial state record. This is the write that must complete
// before the client sees 202.
func (j *journal) appendJob(spec *JobSpec, st *JobStatus) error {
	dir := j.jobDir(st.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := atomicWriteJSON(j.specPath(st.ID), spec); err != nil {
		return err
	}
	return atomicWriteJSON(j.statePath(st.ID), st)
}

// saveState durably rewrites a job's lifecycle record.
func (j *journal) saveState(st *JobStatus) error {
	return atomicWriteJSON(j.statePath(st.ID), st)
}

// removeJob erases a job directory (admission rollback).
func (j *journal) removeJob(id string) error {
	return os.RemoveAll(j.jobDir(id))
}

// journalEntry is one recovered job.
type journalEntry struct {
	Spec   JobSpec
	Status JobStatus
}

// load scans the journal and returns every decodable job, sorted by
// ID. Damaged entries (missing or unparseable records — the crash may
// have interrupted the very first append) are renamed aside to
// <id>.damaged rather than silently deleted, and reported in skipped.
func (j *journal) load() (entries []journalEntry, skipped []string, err error) {
	dirs, err := os.ReadDir(filepath.Join(j.root, "jobs"))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal scan: %w", err)
	}
	for _, d := range dirs {
		if !d.IsDir() || strings.HasSuffix(d.Name(), ".damaged") {
			continue
		}
		id := d.Name()
		var e journalEntry
		if lerr := readJSON(j.specPath(id), &e.Spec); lerr != nil {
			skipped = append(skipped, quarantine(j.jobDir(id), id, lerr))
			continue
		}
		if lerr := readJSON(j.statePath(id), &e.Status); lerr != nil {
			skipped = append(skipped, quarantine(j.jobDir(id), id, lerr))
			continue
		}
		if e.Status.ID != id || !e.Status.State.valid() {
			skipped = append(skipped, quarantine(j.jobDir(id), id,
				fmt.Errorf("inconsistent record (id %q, state %q)", e.Status.ID, e.Status.State)))
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Status.ID < entries[b].Status.ID })
	return entries, skipped, nil
}

// nextID returns the smallest job number strictly greater than every
// journaled one (including quarantined entries, so IDs are never
// reused across restarts).
func (j *journal) nextID() (int, error) {
	dirs, err := os.ReadDir(filepath.Join(j.root, "jobs"))
	if err != nil {
		return 0, err
	}
	next := 1
	for _, d := range dirs {
		name := strings.TrimSuffix(d.Name(), ".damaged")
		n, ok := parseJobID(name)
		if ok && n >= next {
			next = n + 1
		}
	}
	return next, nil
}

// formatJobID renders job number n as the fixed-width directory name.
func formatJobID(n int) string { return fmt.Sprintf("j%08d", n) }

func parseJobID(s string) (int, bool) {
	if len(s) != 9 || s[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func quarantine(dir, id string, cause error) string {
	_ = os.Rename(dir, dir+".damaged")
	return fmt.Sprintf("%s: %v", id, cause)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return nil
}

// atomicWriteJSON installs v at path via temp file + fsync + rename +
// parent-directory sync — the same durability dance
// core.SaveCheckpoint does for checkpoints, applied to the journal's
// JSON records.
func atomicWriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: journal encode %s: %w", filepath.Base(path), err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: journal write %s: %w", filepath.Base(path), e)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: journal install %s: %w", filepath.Base(path), err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
