package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dd"
	"repro/internal/obs"
)

// TestServeChaosInjectedFaultsBecomeRetries: with fault injection
// armed (DD_CHAOS=1), an injected abort on a job's first attempt must
// surface as a scheduled retry that succeeds — never as a terminal
// failure or an HTTP 500. This is the serving layer's contract with
// core.Retryable: chaos-class faults are transient.
func TestServeChaosInjectedFaultsBecomeRetries(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	reg := obs.NewRegistry()
	cfg := testConfig(t.TempDir())
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	// Arm an injected abort partway into every job's first attempt;
	// later attempts run clean.
	s.armEngine = func(id string, attempt int, eng *dd.Engine) {
		if attempt == 1 {
			if !eng.InjectAbortAfter(40, dd.AbortInjected) {
				t.Error("fault injection did not arm despite DD_CHAOS=1")
			}
		}
	}
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	body := `{"circuit":` + jsonStr(testCircuit(8, 300)) + `,"shots":16,"seed":5}`
	resp, st := submitJSON(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("chaos job = %+v; injected faults must be retried, not failed", final)
	}
	if final.Attempt != 2 {
		t.Fatalf("chaos job finished on attempt %d, want 2 (one injected abort, one clean run)", final.Attempt)
	}

	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result after chaos = %d, want 200 (not a 5xx)", rr.StatusCode)
	}

	snap := map[string]float64{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m.Value
	}
	if snap["serve_job_retries_total"] != 1 {
		t.Fatalf("retries = %v, want 1", snap["serve_job_retries_total"])
	}
	if snap["serve_jobs_failed_total"] != 0 {
		t.Fatalf("failed = %v, want 0", snap["serve_jobs_failed_total"])
	}
}

// TestServeChaosRetryBudgetExhaustion: a fault injected on every
// attempt burns the retry budget and then fails the job — bounded
// retries, no infinite loop.
func TestServeChaosRetryBudgetExhaustion(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	s, err := New(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	s.armEngine = func(id string, attempt int, eng *dd.Engine) {
		eng.InjectAbortAfter(40, dd.AbortInjected)
	}

	spec, circ, derr := DecodeJobRequest([]byte(`{"circuit":`+jsonStr(testCircuit(8, 300))+`}`), s.cfg.Caps)
	if derr != nil {
		t.Fatal(derr)
	}
	st, err := s.Submit(spec, circ)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateFailed || final.ErrorKind != "injected" {
		t.Fatalf("always-faulting job = %+v, want failed/injected", final)
	}
	if final.Attempt != fastRetry.MaxAttempts() {
		t.Fatalf("attempts = %d, want %d", final.Attempt, fastRetry.MaxAttempts())
	}
}
