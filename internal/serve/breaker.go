package serve

import "time"

// breaker is a per-client circuit breaker over terminal job outcomes.
// A client whose jobs keep failing permanently stops being admitted
// for a cooldown, instead of burning pool capacity and retry budget on
// work that is probably broken at the source.
//
// States (tracked implicitly):
//
//	closed    consecutive < threshold: admit everything
//	open      now < openUntil: reject with the remaining cooldown
//	half-open cooldown expired but consecutive >= threshold: admit, and
//	          the next terminal outcome decides — success closes the
//	          breaker, failure re-opens it for a full cooldown
//
// The caller provides the clock and holds the lock (the server's
// mutex); breaker itself is not goroutine-safe.
type breaker struct {
	threshold int // consecutive terminal failures that open the breaker
	cooldown  time.Duration

	consecutive int
	openUntil   time.Time
}

// allow reports whether a submission may proceed; when it may not,
// retryAfter is the remaining cooldown.
func (b *breaker) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	if now.Before(b.openUntil) {
		return false, b.openUntil.Sub(now)
	}
	return true, 0
}

// onSuccess records a terminal success, closing the breaker.
func (b *breaker) onSuccess() {
	b.consecutive = 0
	b.openUntil = time.Time{}
}

// onFailure records a terminal failure; at threshold the breaker
// opens. consecutive is deliberately not reset on open: after the
// cooldown the breaker is half-open, and one more failure re-opens it
// immediately.
func (b *breaker) onFailure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}
