package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/obs"
	"repro/internal/serve/retry"
)

// Config configures a Server. The zero value of every field selects a
// sensible default; only Dir is required.
type Config struct {
	// Dir is the journal root (required). A server restarted against
	// the same Dir recovers every non-terminal job.
	Dir string
	// Workers is the simulation worker count (default GOMAXPROCS).
	Workers int
	// Queue bounds the number of admitted-but-not-running jobs
	// (default 256). Beyond it, submissions get 429 + Retry-After.
	Queue int
	// MaxNodes is the server-wide node budget, split evenly across
	// workers exactly as core.RunBatch splits it; a job's own MaxNodes
	// can tighten but never exceed its share. Zero means unlimited.
	MaxNodes int
	// CheckpointEvery is the periodic checkpoint interval in applied
	// gates (default 256; negative disables periodic checkpoints —
	// abort checkpoints still happen).
	CheckpointEvery int
	// Retry is the backoff policy for retryable failures (see
	// retry.Policy for the defaults: 100ms base, ×2, 30s cap, half
	// jitter, 4 attempts).
	Retry retry.Policy
	// PressureWindow is how long a running job must stay at high (or
	// worse) governor pressure before the server sheds load: /readyz
	// flips to 503 and submissions are refused with Retry-After
	// (default 2s; negative disables shedding). Critical pressure also
	// parks the lowest-priority running job regardless of the window.
	PressureWindow time.Duration
	// PerClientActive caps one client's non-terminal jobs
	// (default Queue/4, minimum 1; negative disables the quota).
	PerClientActive int
	// BreakerThreshold is the consecutive terminal-failure count that
	// opens a client's circuit breaker (default 5; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects (default 30s).
	BreakerCooldown time.Duration
	// Caps bounds job submissions (see Caps).
	Caps Caps
	// Registry receives the server's metrics (default: a fresh one).
	Registry *obs.Registry
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0
	}
	switch {
	case c.PerClientActive == 0:
		c.PerClientActive = max(1, c.Queue/4)
	case c.PerClientActive < 0:
		c.PerClientActive = 0
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 5
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	switch {
	case c.PressureWindow == 0:
		c.PressureWindow = 2 * time.Second
	case c.PressureWindow < 0:
		c.PressureWindow = 0
	}
	c.Caps = c.Caps.withDefaults()
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the ddserve daemon core: admission control, the journal,
// the worker pool, and the retry scheduler. HTTP lives in Handler.
type Server struct {
	cfg  Config
	jn   *journal
	pool *batch.Pool
	met  *serveMetrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	clients  map[string]*clientState
	timers   map[string]*time.Timer
	pressure map[string]pressureSample
	rng      *rand.Rand
	nextID   int
	draining bool
	killed   bool

	// armEngine, when set (by same-package tests), is called with each
	// attempt's fresh engine before the run starts — the hook chaos
	// tests use to inject faults into specific attempts.
	armEngine func(id string, attempt int, eng *dd.Engine)
	// afterCheckpoint, when set (by same-package tests), is called —
	// without s.mu held — after each periodic checkpoint becomes
	// durable. Crash and drain tests block in it to freeze a job at a
	// known resume point.
	afterCheckpoint func(id string, gate int)
}

type job struct {
	spec     JobSpec
	circ     *circuit.Circuit
	priority batch.Priority
	status   JobStatus
	// cancel interrupts the running attempt (nil while not running).
	cancel          context.CancelFunc
	cancelRequested bool
	// parkRequested marks a running job the server chose to park under
	// memory pressure: its context is cancelled, and the resulting
	// ErrCanceled is recorded as a parked (resumable) state, not a
	// failure.
	parkRequested bool
}

// pressureSample tracks one running job's governor pressure: the worst
// level its degradations have reported and since when the job has been
// at high or worse — the signal behind load shedding.
type pressureSample struct {
	level dd.PressureLevel
	since time.Time
}

type clientState struct {
	br     breaker
	active int // non-terminal jobs (queued, running, retry-pending)
}

// New opens (or creates) the journal under cfg.Dir, starts the worker
// pool, and re-admits every non-terminal journaled job — the recovery
// path that turns a kill -9 into a resumable event.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jn, err := openJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		jn:       jn,
		met:      newServeMetrics(cfg.Registry),
		jobs:     make(map[string]*job),
		clients:  make(map[string]*clientState),
		timers:   make(map[string]*time.Timer),
		pressure: make(map[string]pressureSample),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	s.pool = batch.NewPool(batch.PoolOptions{
		Workers: cfg.Workers,
		Queue:   cfg.Queue,
		Metrics: cfg.Registry,
	})
	if s.nextID, err = jn.nextID(); err != nil {
		return nil, fmt.Errorf("serve: journal scan: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Registry }

// recover re-admits journaled jobs. Terminal jobs are loaded for
// status queries only; everything else goes back on the queue, to
// resume from its last durable checkpoint.
func (s *Server) recover() error {
	entries, skipped, err := s.jn.load()
	if err != nil {
		return err
	}
	for _, msg := range skipped {
		s.cfg.Logf("serve: quarantined damaged journal entry %s", msg)
	}
	for _, e := range entries {
		e := e
		j := &job{spec: e.Spec, status: e.Status, priority: priorityFor(e.Spec.Priority)}
		s.jobs[e.Status.ID] = j
		s.order = append(s.order, e.Status.ID)
		if e.Status.State.Terminal() {
			continue
		}
		circ, perr := parseSpecCircuit(&e.Spec)
		if perr != nil {
			// The spec was valid at admission; failing to parse now means
			// the journal (or the code) changed under us. Fail the job
			// terminally rather than crash-loop on it.
			j.status.State = StateFailed
			j.status.Error = fmt.Sprintf("recovery: %v", perr)
			j.status.ErrorKind = "error"
			if serr := s.jn.saveState(&j.status); serr != nil {
				s.cfg.Logf("serve: journal %s: %v", j.status.ID, serr)
			}
			s.met.jobsFailed.Inc()
			continue
		}
		j.circ = circ
		j.status.State = StateQueued
		j.status.RetryInMS = 0
		if serr := s.jn.saveState(&j.status); serr != nil {
			return fmt.Errorf("serve: journal %s: %w", j.status.ID, serr)
		}
		if rerr := s.pool.Requeue(s.taskFor(j.status.ID, j.priority)); rerr != nil {
			return fmt.Errorf("serve: requeue %s: %w", j.status.ID, rerr)
		}
		s.clientLocked(j.status.Client).active++
		s.met.recovered.Inc()
		s.cfg.Logf("serve: recovered %s (attempt %d, gate %d/%d)",
			j.status.ID, j.status.Attempt, j.status.Gate, j.status.Gates)
	}
	return nil
}

func priorityFor(p string) batch.Priority {
	switch p {
	case "high":
		return batch.PriorityHigh
	case "low":
		return batch.PriorityLow
	}
	return batch.PriorityNormal
}

func clientKey(c string) string {
	if c == "" {
		return "anon"
	}
	return c
}

// clientLocked returns (creating if needed) the client's state; the
// caller holds s.mu.
func (s *Server) clientLocked(client string) *clientState {
	cs := s.clients[client]
	if cs == nil {
		cs = &clientState{br: breaker{threshold: s.cfg.BreakerThreshold, cooldown: s.cfg.BreakerCooldown}}
		s.clients[client] = cs
	}
	return cs
}

// Submit admits a decoded job: journal first (the WAL write), then
// queue, then acknowledge. Returns the job's initial status, or a
// *RequestError when admission control refuses.
func (s *Server) Submit(spec *JobSpec, circ *circuit.Circuit) (*JobStatus, error) {
	strategy, serr := StrategyFor(spec)
	if serr != nil {
		// DecodeJobRequest already validated the spec; this guards
		// direct API callers.
		return nil, reqErr(400, "%v", serr)
	}
	now := time.Now()
	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		s.met.rejected("draining")
		return nil, &RequestError{Status: 503, Msg: "server is draining", RetryAfter: 10 * time.Second}
	}
	if s.pressuredLocked(now) {
		s.mu.Unlock()
		s.met.rejected("pressure")
		return nil, &RequestError{
			Status:     503,
			Msg:        "server is under sustained memory pressure",
			RetryAfter: s.cfg.PressureWindow,
		}
	}
	client := clientKey(spec.Client)
	cs := s.clientLocked(client)
	if ok, ra := cs.br.allow(now); !ok {
		s.mu.Unlock()
		s.met.rejected("breaker")
		return nil, &RequestError{
			Status:     503,
			Msg:        fmt.Sprintf("client %q circuit breaker open (consecutive failures)", client),
			RetryAfter: ra,
		}
	}
	if s.cfg.PerClientActive > 0 && cs.active >= s.cfg.PerClientActive {
		s.mu.Unlock()
		s.met.rejected("quota")
		return nil, &RequestError{
			Status:     429,
			Msg:        fmt.Sprintf("client %q has %d active jobs (limit %d)", client, cs.active, s.cfg.PerClientActive),
			RetryAfter: time.Second,
		}
	}
	if s.pool.Depth() >= s.pool.Capacity() {
		s.mu.Unlock()
		s.met.rejected("queue_full")
		return nil, &RequestError{Status: 429, Msg: "job queue is full", RetryAfter: time.Second}
	}

	id := formatJobID(s.nextID)
	s.nextID++
	j := &job{
		spec:     *spec,
		circ:     circ,
		priority: priorityFor(spec.Priority),
		status: JobStatus{
			ID:       id,
			State:    StateQueued,
			Client:   client,
			Priority: spec.Priority,
			NQubits:  circ.NQubits,
			Gates:    len(circ.Gates),
			Strategy: strategy.Name(),
		},
	}
	// WAL: the job is durable before the queue sees it and before the
	// client hears 202. A crash after this line re-admits the job.
	if err := s.jn.appendJob(&j.spec, &j.status); err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	if err := s.pool.TrySubmit(s.taskFor(id, j.priority)); err != nil {
		// Roll the journal entry back: the job was never acknowledged.
		if rerr := s.jn.removeJob(id); rerr != nil {
			s.cfg.Logf("serve: rollback %s: %v", id, rerr)
		}
		s.mu.Unlock()
		if errors.Is(err, batch.ErrQueueFull) {
			s.met.rejected("queue_full")
			return nil, &RequestError{Status: 429, Msg: "job queue is full", RetryAfter: time.Second}
		}
		s.met.rejected("closed")
		return nil, &RequestError{Status: 503, Msg: "server is shutting down", RetryAfter: 10 * time.Second}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	cs.active++
	st := j.status
	s.mu.Unlock()
	s.met.admitted(client)
	return &st, nil
}

// Status returns a copy of a job's record.
func (s *Server) Status(id string) (*JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, false
	}
	st := j.status
	if st.Summary != nil {
		sum := *st.Summary
		st.Summary = &sum
	}
	return &st, true
}

// List returns every job's status in admission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status)
	}
	return out
}

// Cancel requests a job stop. Queued and retry-pending jobs fail
// terminally at once; a running job's context is cancelled and the
// abort path records the terminal state. Terminal jobs are returned
// unchanged (cancel is idempotent).
func (s *Server) Cancel(id string) (*JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, false
	}
	if !j.status.State.Terminal() && !j.cancelRequested {
		j.cancelRequested = true
		switch {
		case j.cancel != nil:
			// Running: the abort path finishes the job.
			j.cancel()
		case s.timers[id] != nil:
			s.timers[id].Stop()
			delete(s.timers, id)
			s.met.retriesPending.Add(-1)
			s.finishCanceledLocked(j)
		default:
			// Queued: mark terminal now; the pool task no-ops on it.
			s.finishCanceledLocked(j)
		}
	}
	st := j.status
	return &st, true
}

// Ready reports whether the server accepts submissions.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.killed
}

// Pressured reports whether some running job has been at high (or
// worse) governor pressure for at least Config.PressureWindow — the
// condition under which /readyz answers 503 and Submit sheds.
func (s *Server) Pressured() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pressuredLocked(time.Now())
}

// pressuredLocked is Pressured's body; the caller holds s.mu.
func (s *Server) pressuredLocked(now time.Time) bool {
	if s.cfg.PressureWindow <= 0 {
		return false
	}
	for _, ps := range s.pressure {
		if ps.level >= dd.PressureHigh && now.Sub(ps.since) >= s.cfg.PressureWindow {
			return true
		}
	}
	return false
}

// notePressure ingests one governor degradation from a running job
// (core.Options.OnPressure, called on the job's worker goroutine). It
// feeds the shedding signal, and at critical level parks the
// lowest-priority running job so the box sheds live nodes before any
// job hits its cliff.
func (s *Server) notePressure(id string, d core.Degradation) {
	lvl := pressureLevelFor(d.Level)
	now := time.Now()
	s.mu.Lock()
	if lvl >= dd.PressureHigh {
		ps, tracked := s.pressure[id]
		if !tracked {
			ps = pressureSample{since: now}
		}
		ps.level = lvl
		s.pressure[id] = ps
		s.met.pressureEvents.Inc()
	} else {
		// The governor's measures worked; the job is back below high.
		delete(s.pressure, id)
	}
	var victim *job
	if lvl >= dd.PressureCritical && !s.draining {
		victim = s.parkVictimLocked()
	}
	if victim != nil {
		victim.parkRequested = true
		s.cfg.Logf("serve: pressure from %s: parking %s (priority %s)",
			id, victim.status.ID, victim.priority)
	}
	cancel := context.CancelFunc(nil)
	if victim != nil {
		cancel = victim.cancel
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// parkVictimLocked picks the running job to park under critical
// pressure: the most parkable priority class (low, then normal, then
// high) and within it the newest admission — the one with the least
// sunk work. Returns nil when fewer than two jobs are running (parking
// the only running job would just idle the box). The caller holds s.mu.
func (s *Server) parkVictimLocked() *job {
	var victim *job
	rank := func(p batch.Priority) int {
		switch p {
		case batch.PriorityLow:
			return 0
		case batch.PriorityNormal:
			return 1
		}
		return 2
	}
	running := 0
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if j.cancel == nil || j.parkRequested || j.cancelRequested {
			continue
		}
		running++
		if victim == nil || rank(j.priority) < rank(victim.priority) {
			victim = j
		}
	}
	if running < 2 {
		return nil
	}
	return victim
}

// pressureLevelFor parses a journaled Degradation.Level back into the
// engine's ordered pressure bands.
func pressureLevelFor(level string) dd.PressureLevel {
	switch level {
	case "low":
		return dd.PressureLow
	case "high":
		return dd.PressureHigh
	case "critical":
		return dd.PressureCritical
	}
	return dd.PressureNone
}

// QueueDepth returns the number of queued (not running) jobs.
func (s *Server) QueueDepth() int { return s.pool.Depth() }

// Drain gracefully shuts the server down: admissions stop, pending
// retries are parked where they stand (their journal records already
// say queued), every running job's context is cancelled — which makes
// core write an abort checkpoint and return ErrCanceled, parking the
// job — and Drain waits for the workers, bounded by ctx.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("serve: already draining")
	}
	s.draining = true
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
		s.met.retriesPending.Add(-1)
	}
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	_, err := s.pool.Drain(ctx)
	return err
}

// Kill simulates kill -9 in-process, for crash-recovery tests: journal
// writes stop (the disk freezes at its last durable state), running
// jobs' contexts are cancelled, and the pool is abandoned. The journal
// directory can then be re-opened by a fresh Server, which must
// recover every non-terminal job.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	s.draining = true
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
	}
	s.mu.Unlock()
	s.pool.Kill()
	s.pool.Wait()
}

func (s *Server) taskFor(id string, pri batch.Priority) batch.Task {
	return batch.Task{Priority: pri, Run: func(ctx context.Context, _ int) { s.runJob(ctx, id) }}
}

// budgetFor resolves a job's node budget: the server-wide MaxNodes
// split evenly across workers (core.RunBatch's quota rule), tightened
// by the job's own request but never loosened.
func (s *Server) budgetFor(spec *JobSpec) int {
	share := 0
	if s.cfg.MaxNodes > 0 {
		share = s.cfg.MaxNodes / s.cfg.Workers
		if share < 1 {
			share = 1
		}
	}
	if spec.MaxNodes > 0 && (share == 0 || spec.MaxNodes < share) {
		return spec.MaxNodes
	}
	return share
}

// runJob executes one attempt of a job on a pool worker.
func (s *Server) runJob(poolCtx context.Context, id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.status.State.Terminal() {
		s.mu.Unlock()
		return
	}
	if j.cancelRequested {
		s.finishCanceledLocked(j)
		s.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	j.status.Attempt++
	j.status.RetryInMS = 0
	attempt := j.status.Attempt
	if err := s.jn.saveState(&j.status); err != nil {
		// The running record is advisory (recovery treats running and
		// queued identically); log and continue.
		s.cfg.Logf("serve: journal %s: %v", id, err)
	}
	jctx, cancel := context.WithCancel(poolCtx)
	j.cancel = cancel
	spec := j.spec
	circ := j.circ
	s.mu.Unlock()
	defer cancel()

	eng := dd.New()
	strategy, serr := StrategyFor(&spec)
	if serr != nil {
		s.finishJob(id, nil, serr)
		return
	}
	opt := core.Options{
		Strategy:        strategy,
		UseBlocks:       spec.UseBlocks,
		MaxNodes:        s.budgetFor(&spec),
		Seed:            spec.Seed,
		Engine:          eng,
		CheckpointEvery: s.cfg.CheckpointEvery,
		OnCheckpoint: func(ck *core.Checkpoint) error {
			return s.saveJobCheckpoint(id, ck)
		},
	}
	if spec.TimeoutMS > 0 {
		opt.Deadline = time.Now().Add(time.Duration(spec.TimeoutMS) * time.Millisecond)
	}
	if spec.SoftBudget > 0 || spec.Degrade == "ladder" || spec.Degrade == "approx" {
		opt.SoftBudget = spec.SoftBudget
		if opt.MaxNodes > 0 && opt.SoftBudget > opt.MaxNodes {
			// The job's share shrank below its requested soft budget
			// (server-wide split); govern against the share instead.
			opt.SoftBudget = opt.MaxNodes
		}
		opt.Degrade = spec.Degrade
		opt.ApproxNodes = spec.ApproxNodes
		opt.OnPressure = func(d core.Degradation) { s.notePressure(id, d) }
	}
	// Resume from the last durable checkpoint when one exists.
	if ck, lerr := core.LoadCheckpoint(s.jn.ckptPath(id), eng); lerr == nil {
		if ropt, rerr := core.ResumeOptions(opt, circ, ck); rerr == nil {
			opt = ropt
			s.cfg.Logf("serve: %s resuming at gate %d/%d (attempt %d)",
				id, ck.NextGate, len(circ.Gates), attempt)
		} else {
			s.cfg.Logf("serve: %s checkpoint unusable (%v); restarting from gate 0", id, rerr)
		}
	} else if !errors.Is(lerr, fs.ErrNotExist) {
		// A corrupt checkpoint is not fatal: restart the attempt from
		// scratch rather than fail a recoverable job.
		s.cfg.Logf("serve: %s checkpoint unreadable (%v); restarting from gate 0", id, lerr)
	}
	if s.armEngine != nil {
		s.armEngine(id, attempt, eng)
	}

	res, runErr := core.RunContext(jctx, circ, opt)
	s.finishJob(id, res, runErr)
}

// saveJobCheckpoint persists a resume checkpoint and advances the
// journaled state to checkpointed. Under Kill the write is suppressed:
// the simulated dead process cannot touch the disk.
func (s *Server) saveJobCheckpoint(id string, ck *core.Checkpoint) error {
	s.mu.Lock()
	killed := s.killed
	s.mu.Unlock()
	if killed {
		return nil
	}
	if err := core.SaveCheckpoint(s.jn.ckptPath(id), ck); err != nil {
		return err
	}
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return nil
	}
	j := s.jobs[id]
	if j == nil || j.status.State.Terminal() {
		s.mu.Unlock()
		return nil
	}
	j.status.State = StateCheckpointed
	j.status.Gate = ck.NextGate
	err := s.jn.saveState(&j.status)
	hook := s.afterCheckpoint
	s.mu.Unlock()
	if err == nil && hook != nil {
		hook(id, ck.NextGate)
	}
	return err
}

// persistResult writes the final state as a DDCKPT2 file (result.bin)
// and builds the summary. It runs on the worker goroutine, outside the
// server lock, before the terminal record is journaled — so a crash
// between the two leaves a re-runnable job, never a "done" job with no
// result.
func (s *Server) persistResult(id string, spec *JobSpec, circ *circuit.Circuit, res *core.Result) (*JobSummary, error) {
	ck := &core.Checkpoint{
		CircuitName: circ.Name,
		NQubits:     circ.NQubits,
		NextGate:    res.GatesApplied,
		Seed:        spec.Seed,
		Fallbacks:   res.Fallbacks,
		Repairs:     res.Repairs,
		State:       res.State,
	}
	if err := core.SaveCheckpoint(s.jn.resultPath(id), ck); err != nil {
		return nil, fmt.Errorf("%w: result: %w", core.ErrCheckpointWrite, err)
	}
	sum := &JobSummary{
		DurationMS:   res.Duration.Milliseconds(),
		MatVecSteps:  res.MatVecSteps,
		MatMatSteps:  res.MatMatSteps,
		Fallbacks:    res.Fallbacks,
		Repairs:      res.Repairs,
		StateNodes:   res.Engine.SizeV(res.State),
		Norm:         res.State.Norm(),
		Degradations: len(res.Degradations),
	}
	if res.FidelityBound > 0 && res.FidelityBound < 1 {
		sum.FidelityBound = res.FidelityBound
	}
	if spec.Shots > 0 {
		rng := rand.New(rand.NewSource(spec.Seed))
		sum.Samples = make(map[string]int)
		for i := 0; i < spec.Shots; i++ {
			outcome := res.State.SampleAll(rng)
			sum.Samples[fmt.Sprintf("%0*b", circ.NQubits, outcome)]++
		}
	}
	return sum, nil
}

// finishJob records an attempt's outcome and decides what happens
// next: done, a scheduled retry, parked (drain), or failed.
func (s *Server) finishJob(id string, res *core.Result, runErr error) {
	var sum *JobSummary
	if runErr == nil {
		s.mu.Lock()
		j := s.jobs[id]
		killed := s.killed
		var spec JobSpec
		var circ *circuit.Circuit
		if j != nil {
			spec, circ = j.spec, j.circ
		}
		s.mu.Unlock()
		if j == nil || killed {
			return
		}
		sum, runErr = s.persistResult(id, &spec, circ, res)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || s.killed || j.status.State.Terminal() {
		return
	}
	j.cancel = nil
	delete(s.pressure, id)
	parked := j.parkRequested
	j.parkRequested = false

	if runErr == nil {
		j.status.State = StateDone
		j.status.Gate = j.status.Gates
		j.status.Error, j.status.ErrorKind = "", ""
		j.status.Retryable = false
		j.status.RetryInMS = 0
		j.status.Summary = sum
		s.persistTerminalLocked(j)
		s.met.jobsDone.Inc()
		s.met.jobSeconds.Observe(res.Duration.Seconds())
		s.settleClientLocked(j, outcomeSuccess)
		// The resume checkpoint is stale once the result is durable.
		if err := os.Remove(s.jn.ckptPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.cfg.Logf("serve: %s: drop stale checkpoint: %v", id, err)
		}
		return
	}

	kind := failureKind(runErr)
	retryable := core.Retryable(runErr)
	j.status.Error = runErr.Error()
	j.status.ErrorKind = kind
	j.status.Retryable = retryable

	switch {
	case j.cancelRequested:
		j.status.State = StateFailed
		j.status.ErrorKind = "canceled"
		j.status.Retryable = false
		s.persistTerminalLocked(j)
		s.met.jobsFailed.Inc()
		s.settleClientLocked(j, outcomeNeutral)
	case s.draining && errors.Is(runErr, core.ErrCanceled):
		// Drain interrupted the attempt; the abort checkpoint is on
		// disk. Park: the next process resumes from it.
		j.status.State = StateParked
		j.status.Retryable = true
		if err := s.jn.saveState(&j.status); err != nil {
			s.cfg.Logf("serve: journal %s: %v", id, err)
		}
		s.met.jobsParked.Inc()
		s.cfg.Logf("serve: parked %s at gate %d/%d", id, j.status.Gate, j.status.Gates)
	case (parked && errors.Is(runErr, core.ErrCanceled) || errors.Is(runErr, core.ErrPressure)) &&
		j.status.Attempt < s.cfg.Retry.MaxAttempts() && !s.draining:
		// Parked under memory pressure — either the job's own governor
		// exhausted its ladder (FailurePressure) or the server chose
		// this job as the park victim. Re-admit after a backoff, to
		// resume under a quieter box. This deliberately matches even
		// when the park checkpoint write failed (ErrCheckpointWrite
		// joined, core.Retryable false): the journal's previous durable
		// checkpoint is still a valid resume point, so the job is
		// re-admitted rather than lost.
		delay := s.cfg.Retry.Delay(j.status.Attempt-1, s.rng)
		j.status.State = StateParked
		j.status.Retryable = true
		j.status.RetryInMS = delay.Milliseconds()
		if err := s.jn.saveState(&j.status); err != nil {
			s.cfg.Logf("serve: journal %s: %v", id, err)
		}
		s.met.jobsParked.Inc()
		s.met.pressureParks.Inc()
		s.met.retriesPending.Add(1)
		s.timers[id] = time.AfterFunc(delay, func() { s.fireRetry(id) })
		s.cfg.Logf("serve: parked %s under memory pressure at gate %d/%d (attempt %d, resume in %s)",
			id, j.status.Gate, j.status.Gates, j.status.Attempt, delay.Round(time.Millisecond))
	case retryable && j.status.Attempt < s.cfg.Retry.MaxAttempts() && !s.draining:
		delay := s.cfg.Retry.Delay(j.status.Attempt-1, s.rng)
		j.status.State = StateQueued
		j.status.RetryInMS = delay.Milliseconds()
		if err := s.jn.saveState(&j.status); err != nil {
			s.cfg.Logf("serve: journal %s: %v", id, err)
		}
		s.met.retries.Inc()
		s.met.retriesPending.Add(1)
		s.timers[id] = time.AfterFunc(delay, func() { s.fireRetry(id) })
		s.cfg.Logf("serve: retrying %s in %s (attempt %d/%d, %s)",
			id, delay.Round(time.Millisecond), j.status.Attempt, s.cfg.Retry.MaxAttempts(), kind)
	default:
		j.status.State = StateFailed
		s.persistTerminalLocked(j)
		s.met.jobsFailed.Inc()
		s.settleClientLocked(j, outcomeFailure)
		s.cfg.Logf("serve: failed %s (%s, attempt %d): %v", id, kind, j.status.Attempt, runErr)
	}
}

// fireRetry re-admits a job whose backoff elapsed.
func (s *Server) fireRetry(id string) {
	s.mu.Lock()
	if _, armed := s.timers[id]; !armed {
		// Cancelled or drained concurrently with the timer firing.
		s.mu.Unlock()
		return
	}
	delete(s.timers, id)
	s.met.retriesPending.Add(-1)
	j := s.jobs[id]
	if j == nil || s.killed || j.status.State.Terminal() {
		s.mu.Unlock()
		return
	}
	if j.cancelRequested {
		s.finishCanceledLocked(j)
		s.mu.Unlock()
		return
	}
	if s.draining {
		// Journal already says queued; the next process picks it up.
		s.mu.Unlock()
		return
	}
	task := s.taskFor(id, j.priority)
	s.mu.Unlock()
	if err := s.pool.Requeue(task); err != nil {
		s.cfg.Logf("serve: requeue %s: %v", id, err)
	}
}

type clientOutcome uint8

const (
	outcomeSuccess clientOutcome = iota
	outcomeFailure
	outcomeNeutral // client-requested cancel: no breaker signal
)

// settleClientLocked releases a terminal job's quota slot and feeds
// the breaker; the caller holds s.mu.
func (s *Server) settleClientLocked(j *job, oc clientOutcome) {
	cs := s.clientLocked(j.status.Client)
	if cs.active > 0 {
		cs.active--
	}
	switch oc {
	case outcomeSuccess:
		cs.br.onSuccess()
	case outcomeFailure:
		cs.br.onFailure(time.Now())
	}
}

func (s *Server) finishCanceledLocked(j *job) {
	j.status.State = StateFailed
	j.status.Error = "canceled by client"
	j.status.ErrorKind = "canceled"
	j.status.Retryable = false
	j.status.RetryInMS = 0
	s.persistTerminalLocked(j)
	s.met.jobsFailed.Inc()
	s.settleClientLocked(j, outcomeNeutral)
}

// persistTerminalLocked journals a terminal record. A write failure is
// logged, not fatal: the in-memory state stays terminal, and the worst
// post-crash consequence is one extra re-run — at-least-once
// execution, exactly-once terminal state per journal generation.
func (s *Server) persistTerminalLocked(j *job) {
	if err := s.jn.saveState(&j.status); err != nil {
		s.cfg.Logf("serve: journal %s terminal state: %v", j.status.ID, err)
	}
}

// failureKind names an error class for records and metrics.
func failureKind(err error) string {
	if errors.Is(err, core.ErrCheckpointWrite) {
		return "checkpoint-write"
	}
	var re *core.RunError
	if errors.As(err, &re) {
		return re.Kind.String()
	}
	return "error"
}
