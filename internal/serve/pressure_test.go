// Tests for the server's memory-pressure behaviour: load shedding on
// sustained governor pressure (readyz + submit 503), parking the
// lowest-priority running job at critical pressure, spec-level
// validation of the governor knobs, and the checkpoint-write-failure
// path during a pressure park (the job must not be lost).
package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/serve/retry"
)

// TestServePressureShedsSubmissions: once some running job has been at
// high pressure for the configured window, /readyz answers 503 and
// submissions are refused with Retry-After; when the pressure clears,
// admission resumes.
func TestServePressureShedsSubmissions(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.PressureWindow = time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// Healthy: ready, and submissions are accepted.
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("readyz while healthy = %d, want 200", rr.StatusCode)
	}

	// A running job reports sustained high pressure.
	s.notePressure("j-load", core.Degradation{Rung: 2, Action: "flush", Level: "high"})
	time.Sleep(10 * time.Millisecond)
	if !s.Pressured() {
		t.Fatal("sustained high pressure not reflected in Pressured()")
	}

	rr, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz under pressure = %d, want 503", rr.StatusCode)
	}

	spec := `{"circuit":` + jsonStr(testCircuit(4, 8)) + `}`
	resp, _ := submitJSON(t, ts, spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under pressure = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pressure 503 without Retry-After")
	}

	// The governor's measures worked: the job drops below high and
	// admission resumes.
	s.notePressure("j-load", core.Degradation{Rung: 1, Action: "gc", Level: "low"})
	if s.Pressured() {
		t.Fatal("cleared pressure still sheds")
	}
	resp, st := submitJSON(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery = %d, want 202", resp.StatusCode)
	}
	waitTerminal(t, s, st.ID, 30*time.Second)
}

// TestServePressureParksLowestPriorityVictim: at critical pressure the
// server parks the most parkable running job (lowest priority class)
// rather than letting the pressured one hit its cliff. The victim ends
// up StateParked with a durable checkpoint; the high-priority job runs
// to completion.
func TestServePressureParksLowestPriorityVictim(t *testing.T) {
	dir := t.TempDir()
	s, hits, release := stalledServer(t, dir, func(c *Config) {
		c.Workers = 2
		c.CheckpointEvery = 8
		// A long backoff keeps the parked state observable.
		c.Retry = retry.Policy{Base: time.Hour, Max: time.Hour, Jitter: 0, Attempts: 3}
	})
	released := false
	releaseOnce := func() {
		if !released {
			released = true
			close(release)
		}
	}
	defer func() {
		releaseOnce()
		s.Kill()
	}()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	_, stLow := submitJSON(t, ts,
		`{"circuit":`+jsonStr(testCircuit(8, 400))+`,"priority":"low"}`)
	_, stHigh := submitJSON(t, ts,
		`{"circuit":`+jsonStr(testCircuit(8, 400))+`,"priority":"high"}`)

	// Both jobs are running and frozen in their first checkpoint.
	seen := map[string]bool{}
	for len(seen) < 2 {
		seen[<-hits] = true
	}
	if !seen[stLow.ID] || !seen[stHigh.ID] {
		t.Fatalf("checkpoints from %v, want both %s and %s", seen, stLow.ID, stHigh.ID)
	}

	// The high-priority job's governor reports critical pressure.
	s.notePressure(stHigh.ID, core.Degradation{Rung: 1, Action: "gc", Level: "critical"})
	releaseOnce() // unfreeze both jobs; later checkpoints pass through

	final := waitTerminal(t, s, stHigh.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("high-priority job = %+v, want done", final)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, ok := s.Status(stLow.ID)
		if !ok {
			t.Fatalf("victim %s vanished", stLow.ID)
		}
		if got.State == StateParked {
			if !got.Retryable {
				t.Fatalf("parked victim not retryable: %+v", got)
			}
			if got.Gate == 0 {
				t.Fatalf("parked victim has no checkpoint progress: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim still %s, want parked", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A restart against the same journal resumes the parked victim.
	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	if got := waitTerminal(t, s2, stLow.ID, 30*time.Second); got.State != StateDone {
		t.Fatalf("victim after restart = %+v, want done", got)
	}
}

// TestDecodeJobRequestGovernorKnobs pins the spec-level validation of
// the governor fields.
func TestDecodeJobRequestGovernorKnobs(t *testing.T) {
	caps := Caps{MaxQubits: 8, MaxGates: 100, MaxShots: 1000}
	circ := `{"circuit":"qubits 2\nh 0\ncx 0 1\n"`
	cases := []struct {
		name    string
		body    string
		wantErr int // 0 = success
	}{
		{"soft budget ok", circ + `,"soft_budget":100000}`, 0},
		{"ladder ok", circ + `,"soft_budget":100000,"degrade":"ladder"}`, 0},
		{"approx ok", circ + `,"degrade":"approx","approx_nodes":16}`, 0},
		{"off ok", circ + `,"degrade":"off"}`, 0},
		{"negative soft budget", circ + `,"soft_budget":-1}`, 400},
		{"unknown degrade mode", circ + `,"degrade":"gently"}`, 400},
		{"negative approx nodes", circ + `,"degrade":"approx","approx_nodes":-2}`, 400},
		{"approx nodes without approx", circ + `,"approx_nodes":16}`, 400},
		{"approx nodes in ladder mode", circ + `,"degrade":"ladder","approx_nodes":16}`, 400},
		{"approx floor below qubits", circ + `,"degrade":"approx","approx_nodes":1}`, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := DecodeJobRequest([]byte(c.body), caps)
			if c.wantErr == 0 {
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				return
			}
			re, ok := err.(*RequestError)
			if !ok {
				t.Fatalf("decode = %v, want *RequestError(%d)", err, c.wantErr)
			}
			if re.Status != c.wantErr {
				t.Fatalf("status = %d (%s), want %d", re.Status, re.Msg, c.wantErr)
			}
		})
	}
}

// TestServePressureParkCheckpointFailure: when the park checkpoint
// cannot be written (the checkpoint path is unwritable), the job is
// still parked — not lost — and the next attempt restarts from its
// last durable state and completes. The journal stays consistent
// throughout.
func TestServePressureParkCheckpointFailure(t *testing.T) {
	t.Setenv("DD_CHAOS", "1")
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Workers = 1
	cfg.Retry = retry.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond, Jitter: 0, Attempts: 3}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	// Poison the first job's checkpoint path: a directory where the
	// checkpoint file must go makes every checkpoint write fail.
	const id = "j00000001"
	if err := os.MkdirAll(filepath.Join(dir, "jobs", id, "ckpt.bin"), 0o755); err != nil {
		t.Fatal(err)
	}

	// The first attempt walks the ladder to a park under injected
	// critical pressure and fails its park-checkpoint write; later
	// attempts run clean against a healed checkpoint path.
	s.armEngine = func(_ string, attempt int, eng *dd.Engine) {
		if attempt == 1 {
			if !eng.InjectPressure(dd.PressureCritical) {
				t.Error("chaos injection refused under DD_CHAOS=1")
			}
			return
		}
		if err := os.RemoveAll(filepath.Join(dir, "jobs", id, "ckpt.bin")); err != nil {
			t.Errorf("heal checkpoint path: %v", err)
		}
	}

	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, st := submitJSON(t, ts,
		`{"circuit":`+jsonStr(testCircuit(6, 60))+`,"degrade":"ladder","soft_budget":100000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if st.ID != id {
		t.Fatalf("first job id = %s, want %s (checkpoint poisoning missed)", st.ID, id)
	}

	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job = %+v, want done after the retry", final)
	}
	if final.Attempt < 2 {
		t.Fatalf("job finished on attempt %d, want a park + retry", final.Attempt)
	}

	// The journal can be reloaded cleanly — nothing was quarantined.
	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatalf("journal inconsistent after park with failed checkpoint: %v", err)
	}
	s2.Kill()
}
