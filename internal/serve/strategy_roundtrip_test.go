package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
)

// TestRetryAfterRoundsUp covers the Retry-After header contract: the
// advertised backoff is rounded up to whole seconds and floored at 1,
// never truncated — a 500ms RetryAfter must not render as "0" and
// invite an immediate retry stampede.
func TestRetryAfterRoundsUp(t *testing.T) {
	cases := []struct {
		retryAfter time.Duration
		want       string
	}{
		{500 * time.Millisecond, "1"},
		{time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{0, ""}, // unset: no header
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeRequestError(rec, &RequestError{Status: 429, Msg: "busy", RetryAfter: c.retryAfter})
		if got := rec.Header().Get("Retry-After"); got != c.want {
			t.Errorf("RetryAfter %v -> header %q, want %q", c.retryAfter, got, c.want)
		}
		if rec.Code != 429 {
			t.Errorf("RetryAfter %v -> status %d, want 429", c.retryAfter, rec.Code)
		}
	}
}

// TestStrategyRoundTripAllSurfaces is the drift guard for the strategy
// name surface: every selector in the shared table (core.StrategyNames)
// must be accepted by the job decoder, spell the same canonical name as
// the shared constructor, and survive the checkpoint-name round trip
// the resume path depends on.
func TestStrategyRoundTripAllSurfaces(t *testing.T) {
	caps := Caps{MaxQubits: 8, MaxGates: 100, MaxShots: 1000}
	for _, name := range core.StrategyNames() {
		t.Run(name, func(t *testing.T) {
			body := fmt.Sprintf(`{"circuit":"qubits 2\nh 0\ncx 0 1\n","strategy":%q}`, name)
			spec, _, err := DecodeJobRequest([]byte(body), caps)
			if err != nil {
				t.Fatalf("decoder rejects %q: %v", name, err)
			}
			st, err := StrategyFor(spec)
			if err != nil {
				t.Fatalf("StrategyFor: %v", err)
			}
			ref, err := core.NewStrategy(name, core.StrategyKnobs{})
			if err != nil {
				t.Fatalf("core.NewStrategy: %v", err)
			}
			if st.Name() != ref.Name() {
				t.Fatalf("serve spells %q, core spells %q", st.Name(), ref.Name())
			}
			back, err := core.StrategyFromName(st.Name())
			if err != nil {
				t.Fatalf("checkpoint name %q does not parse: %v", st.Name(), err)
			}
			if back.Name() != st.Name() {
				t.Fatalf("round trip %q -> %q", st.Name(), back.Name())
			}
		})
	}
	// Planner knobs flow through the spec into the canonical name.
	spec := &JobSpec{Strategy: "planner", Window: 16, Ratio: 0.5, Growth: 4}
	st, err := StrategyFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "planner(w=16,r=0.5,g=4)" {
		t.Fatalf("planner knobs spell %q", st.Name())
	}
	// Negative knobs are a 400-class configuration error, not a silent
	// default.
	if _, err := StrategyFor(&JobSpec{Strategy: "planner", Window: -1}); err == nil {
		t.Fatal("negative planner window accepted")
	}
	if _, err := StrategyFor(&JobSpec{Strategy: "k-operations", K: -2}); err == nil {
		t.Fatal("negative k accepted")
	}
}

// TestServeParkedPlannerJobResumes parks a running planner job via
// Drain and restarts the server on the same journal: the job must
// resume under the same canonical strategy name — with the planner's
// adaptive state reset, since only the knobs round-trip through the
// checkpoint — and finish.
func TestServeParkedPlannerJobResumes(t *testing.T) {
	dir := t.TempDir()
	s, hits, release := stalledServer(t, dir, func(c *Config) {
		c.Workers = 1
		c.CheckpointEvery = 8
	})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	spec := `{"circuit":` + jsonStr(testCircuit(8, 400)) + `,"strategy":"planner","window":8,"shots":8,"seed":11}`
	_, st := submitJSON(t, ts, spec)
	<-hits // the job is frozen inside its first durable checkpoint

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.testDraining() {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, _ := s.Status(st.ID)
	if got.State != StateParked {
		t.Fatalf("job after drain = %+v, want parked", got)
	}
	if got.Gate == 0 {
		t.Fatal("parked planner job has no checkpoint progress")
	}

	s2, err := New(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	final := waitTerminal(t, s2, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("parked planner job after restart = %+v", final)
	}
	if final.Strategy != "planner(w=8,r=1,g=2)" {
		t.Fatalf("resumed under strategy %q, want planner(w=8,r=1,g=2)", final.Strategy)
	}
}
