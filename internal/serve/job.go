// Package serve implements ddserve: a crash-safe simulation-as-a-
// service daemon. Jobs arrive over HTTP (OpenQASM or the native
// circuit format), are journaled durably before they are acknowledged,
// and execute on a bounded priority worker pool with per-client
// admission control, backoff retries, and checkpoint-based recovery —
// a kill -9'd server restarts and resumes in-flight jobs from their
// last durable checkpoint.
package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
)

// JobSpec is a client's job submission, exactly as journaled in
// job.json. Exactly one of Circuit (native format) or QASM must be
// set.
type JobSpec struct {
	// Client identifies the submitter for quotas, circuit breaking and
	// metrics. Empty means "anon".
	Client string `json:"client,omitempty"`
	// Priority is "high", "normal" (default) or "low".
	Priority string `json:"priority,omitempty"`
	// Circuit is the program in the native text format.
	Circuit string `json:"circuit,omitempty"`
	// QASM is the program in OpenQASM 2.0. Dynamic operations
	// (measure / reset / if) are rejected: a served job must be a pure
	// unitary evolution so checkpoint-resume replays deterministically.
	QASM string `json:"qasm,omitempty"`
	// Strategy selects the multiplication strategy by its canonical
	// name — any entry of core.StrategyNames(): "sequential" (default),
	// "k-operations", "max-size", "adaptive", "planner", "combine-all".
	Strategy string `json:"strategy,omitempty"`
	// K parameterises k-operations (default 4).
	K int `json:"k,omitempty"`
	// SMax parameterises max-size (default 128).
	SMax int `json:"smax,omitempty"`
	// Ratio parameterises adaptive and the planner's flush bound
	// (default 1.0).
	Ratio float64 `json:"ratio,omitempty"`
	// Window parameterises the planner's maximum combination window
	// (default 64).
	Window int `json:"window,omitempty"`
	// Growth parameterises the planner's proactive-flush lookahead in
	// gates (default 2).
	Growth float64 `json:"growth,omitempty"`
	// UseBlocks enables block-structured matrix reuse.
	UseBlocks bool `json:"use_blocks,omitempty"`
	// Shots, when positive, samples that many measurement outcomes from
	// the final state (deterministically from Seed).
	Shots int `json:"shots,omitempty"`
	// Seed drives sampling; recorded in checkpoints for resume.
	Seed int64 `json:"seed,omitempty"`
	// MaxNodes optionally tightens the per-job node budget below the
	// server's per-worker share. It can never raise it.
	MaxNodes int `json:"max_nodes,omitempty"`
	// TimeoutMS optionally bounds the job's wall-clock run time per
	// attempt, in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// SoftBudget arms the memory-pressure governor at this live-node
	// target (see core.Options.SoftBudget): the run degrades in stages
	// near the target instead of aborting at the hard budget. Clamped
	// to the job's effective hard budget.
	SoftBudget int `json:"soft_budget,omitempty"`
	// Degrade selects the governor mode: "" / "off", "ladder"
	// (exact-preserving measures only), or "approx" (opt-in
	// fidelity-bounded truncation; the summary reports the bound).
	Degrade string `json:"degrade,omitempty"`
	// ApproxNodes is the approximation rung's state-size target; only
	// meaningful with Degrade "approx" (default soft budget / 4).
	ApproxNodes int `json:"approx_nodes,omitempty"`
}

// Caps bounds what DecodeJobRequest accepts; zero fields select
// defaults. The caps mirror the QASM parser's own hard limits
// (register size, gate-expansion count) so the decoder rejects
// oversized work before it costs anything.
type Caps struct {
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxQubits bounds the circuit width (default 30).
	MaxQubits int
	// MaxGates bounds the gate count after expansion (default 1<<20,
	// the QASM parser's own expansion cap).
	MaxGates int
	// MaxShots bounds requested samples (default 1<<20).
	MaxShots int
}

func (c Caps) withDefaults() Caps {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 30
	}
	if c.MaxGates <= 0 {
		c.MaxGates = 1 << 20
	}
	if c.MaxShots <= 0 {
		c.MaxShots = 1 << 20
	}
	return c
}

// RequestError is a client-attributable decode/validation failure,
// carrying the HTTP status the API layer should answer with.
// RetryAfter, when positive, asks the client to back off (rendered as
// a Retry-After header on 429/503 responses).
type RequestError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *RequestError) Error() string { return e.Msg }

func reqErr(status int, format string, args ...any) *RequestError {
	return &RequestError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// DecodeJobRequest parses and validates a job-submission body. It
// returns the spec (normalised) and the parsed circuit, or a
// *RequestError describing what the client got wrong. It never
// executes anything: parsing is bounded by caps so a hostile body
// cannot cost more than the caps allow.
func DecodeJobRequest(body []byte, caps Caps) (*JobSpec, *circuit.Circuit, error) {
	caps = caps.withDefaults()
	if int64(len(body)) > caps.MaxBodyBytes {
		return nil, nil, reqErr(413, "body is %d bytes; limit %d", len(body), caps.MaxBodyBytes)
	}
	var spec JobSpec
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, nil, reqErr(400, "invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, nil, reqErr(400, "trailing data after JSON body")
	}
	if spec.Circuit != "" && spec.QASM != "" {
		return nil, nil, reqErr(400, "set exactly one of circuit or qasm, not both")
	}
	if spec.Circuit == "" && spec.QASM == "" {
		return nil, nil, reqErr(400, "set exactly one of circuit or qasm")
	}
	switch spec.Priority {
	case "", "normal":
		spec.Priority = "normal"
	case "high", "low":
	default:
		return nil, nil, reqErr(400, "priority %q: want high, normal or low", spec.Priority)
	}
	if spec.Shots < 0 || spec.Shots > caps.MaxShots {
		return nil, nil, reqErr(400, "shots %d out of range [0,%d]", spec.Shots, caps.MaxShots)
	}
	if spec.MaxNodes < 0 {
		return nil, nil, reqErr(400, "max_nodes must be >= 0")
	}
	if spec.TimeoutMS < 0 {
		return nil, nil, reqErr(400, "timeout_ms must be >= 0")
	}
	if spec.SoftBudget < 0 {
		return nil, nil, reqErr(400, "soft_budget must be >= 0")
	}
	switch spec.Degrade {
	case "", "off", "ladder", "approx":
	default:
		return nil, nil, reqErr(400, "degrade %q: want off, ladder or approx", spec.Degrade)
	}
	if spec.ApproxNodes < 0 {
		return nil, nil, reqErr(400, "approx_nodes must be >= 0")
	}
	if spec.ApproxNodes > 0 && spec.Degrade != "approx" {
		return nil, nil, reqErr(400, `approx_nodes is only meaningful with degrade "approx"`)
	}
	if _, err := StrategyFor(&spec); err != nil {
		return nil, nil, reqErr(400, "%v", err)
	}

	var (
		circ *circuit.Circuit
		err  error
	)
	if spec.QASM != "" {
		if hasDynamicOps(spec.QASM) {
			return nil, nil, reqErr(400, "dynamic operations (measure/reset/if) are not servable; submit a unitary circuit")
		}
		prog, perr := qasm.ParseString(spec.QASM)
		if perr != nil {
			return nil, nil, reqErr(400, "qasm: %v", perr)
		}
		circ = prog.Circuit
	} else {
		circ, err = circuit.ParseString(spec.Circuit)
		if err != nil {
			return nil, nil, reqErr(400, "circuit: %v", err)
		}
	}
	if circ.NQubits <= 0 {
		return nil, nil, reqErr(400, "circuit declares no qubits")
	}
	if circ.NQubits > caps.MaxQubits {
		return nil, nil, reqErr(400, "circuit has %d qubits; limit %d", circ.NQubits, caps.MaxQubits)
	}
	if len(circ.Gates) == 0 {
		return nil, nil, reqErr(400, "circuit has no gates")
	}
	if len(circ.Gates) > caps.MaxGates {
		return nil, nil, reqErr(400, "circuit has %d gates; limit %d", len(circ.Gates), caps.MaxGates)
	}
	if spec.ApproxNodes > 0 && spec.ApproxNodes < circ.NQubits {
		return nil, nil, reqErr(400, "approx_nodes %d below qubit count %d (a state DD cannot be smaller)",
			spec.ApproxNodes, circ.NQubits)
	}
	return &spec, circ, nil
}

// parseSpecCircuit re-parses a journaled spec's program during
// recovery (specs were validated at admission; this only rebuilds the
// in-memory circuit).
func parseSpecCircuit(spec *JobSpec) (*circuit.Circuit, error) {
	if spec.QASM != "" {
		prog, err := qasm.ParseString(spec.QASM)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	}
	return circuit.ParseString(spec.Circuit)
}

// hasDynamicOps reports whether the QASM text uses measure / reset /
// conditional statements (same detection as cmd/ddsim).
func hasDynamicOps(text string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		for _, kw := range []string{"measure", "reset", "if"} {
			if strings.HasPrefix(line, kw) {
				return true
			}
		}
	}
	return false
}

// StrategyFor builds the core.Strategy a spec requests through the
// shared strategy table (core.NewStrategy) — the same constructor
// behind the ddsim flags, producing the same canonical Name() spelling
// checkpoints record, so resumed attempts agree with the journal.
// Zero-valued knobs select each family's default; negative knobs are a
// *core.ConfigError the admission path rejects with 400.
func StrategyFor(spec *JobSpec) (core.Strategy, error) {
	name := spec.Strategy
	if name == "" {
		name = "sequential"
	}
	st, err := core.NewStrategy(name, core.StrategyKnobs{
		K:      spec.K,
		SMax:   spec.SMax,
		Ratio:  spec.Ratio,
		Window: spec.Window,
		Growth: spec.Growth,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return st, nil
}

// JobState is a job's position in the lifecycle state machine:
//
//	queued -> running -> done
//	            |-> checkpointed -> running (same process)
//	            |-> queued  (retryable failure, backoff pending)
//	            |-> parked  (drain: checkpointed, resumes next start)
//	            |-> failed  (permanent)
//
// done and failed are terminal; everything else is re-admitted on
// restart.
type JobState string

const (
	StateQueued       JobState = "queued"
	StateRunning      JobState = "running"
	StateCheckpointed JobState = "checkpointed"
	StateParked       JobState = "parked"
	StateDone         JobState = "done"
	StateFailed       JobState = "failed"
)

// Terminal reports whether the state is final. A job reaches a
// terminal state exactly once; recovery re-runs only non-terminal
// jobs.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// valid reports whether s is a state this server writes (guards the
// journal loader against scribbled records).
func (s JobState) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateCheckpointed, StateParked, StateDone, StateFailed:
		return true
	}
	return false
}

// JobSummary describes a completed run.
type JobSummary struct {
	DurationMS  int64   `json:"duration_ms"`
	MatVecSteps int     `json:"matvec_steps"`
	MatMatSteps int     `json:"matmat_steps"`
	Fallbacks   int     `json:"fallbacks,omitempty"`
	Repairs     int     `json:"repairs,omitempty"`
	StateNodes  int     `json:"state_nodes"`
	Norm        float64 `json:"norm"`
	// Degradations counts the memory-pressure governor's ladder
	// actions during the run (0 for an ungoverned or untroubled run).
	Degradations int `json:"degradations,omitempty"`
	// FidelityBound is the run's cumulative fidelity lower bound; set
	// only when approximation lowered it below 1.
	FidelityBound float64        `json:"fidelity_bound,omitempty"`
	Samples       map[string]int `json:"samples,omitempty"`
}

// JobStatus is a job's current lifecycle record — the unit the journal
// persists (state.json) and the API returns.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Client   string   `json:"client"`
	Priority string   `json:"priority"`
	NQubits  int      `json:"nqubits"`
	Gates    int      `json:"gates"`
	// Strategy is the canonical strategy name (core.Strategy.Name())
	// the job runs under, with every knob resolved. It is journaled
	// with the job, so a parked job resumes under the same spelling —
	// only the knobs survive the round trip; adaptive planner state
	// restarts fresh.
	Strategy string `json:"strategy,omitempty"`
	// Attempt counts executions started (1 on the first run).
	Attempt int `json:"attempt"`
	// Gate is the resume point: gates applied as of the last durable
	// checkpoint.
	Gate int `json:"gate"`
	// Error and ErrorKind describe the last failure (terminal or
	// retried). ErrorKind is the core.FailureKind string.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Retryable records the classification of the last failure.
	Retryable bool `json:"retryable,omitempty"`
	// RetryInMS is how far in the future the next attempt was
	// scheduled, at the time the record was written.
	RetryInMS int64       `json:"retry_in_ms,omitempty"`
	Summary   *JobSummary `json:"summary,omitempty"`
}
