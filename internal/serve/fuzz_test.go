package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeJobRequest hammers the job-submission decoder — JSON body
// plus embedded QASM / native circuit text — with hostile inputs. The
// decoder must never panic, and anything it accepts must respect the
// caps it was given (they mirror the QASM parser's own register-size
// and gate-expansion limits).
func FuzzDecodeJobRequest(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "submit_*.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no testdata seeds: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hostile hand-picked seeds: truncation, trailing data, huge
	// registers, deep repeats, dynamic ops, strategy edge cases.
	for _, s := range []string{
		`{`,
		`{}`,
		`null`,
		`{"circuit":""}`,
		`{"circuit":"qubits 1\nh 0\n"} }`,
		`{"qasm":"OPENQASM 2.0;\nqreg q[99999999];\nh q[0];\n"}`,
		`{"circuit":"qubits 2\nrepeat 1000000\nh 0\nendrepeat\n"}`,
		`{"qasm":"OPENQASM 2.0;\nqreg q[1];\nif(c==1) h q[0];\n"}`,
		`{"circuit":"qubits 1\nh 0\n","strategy":"adaptive","ratio":-1}`,
		`{"circuit":"qubits 1\nh 0\n","shots":-9223372036854775808}`,
		"{\"circuit\":\"qubits 1\\nh \xff0\\n\"}",
	} {
		f.Add([]byte(s))
	}

	caps := Caps{MaxBodyBytes: 1 << 16, MaxQubits: 12, MaxGates: 4096, MaxShots: 1 << 12}
	f.Fuzz(func(t *testing.T, body []byte) {
		spec, circ, err := DecodeJobRequest(body, caps)
		if err != nil {
			if spec != nil || circ != nil {
				t.Fatal("non-nil result alongside error")
			}
			if _, ok := err.(*RequestError); !ok {
				t.Fatalf("decoder returned a non-RequestError: %v", err)
			}
			return
		}
		if spec == nil || circ == nil {
			t.Fatal("nil result without error")
		}
		// Everything the decoder accepts must sit inside the caps and
		// be executable as-is.
		if circ.NQubits <= 0 || circ.NQubits > caps.MaxQubits {
			t.Fatalf("accepted %d qubits (cap %d)", circ.NQubits, caps.MaxQubits)
		}
		if len(circ.Gates) == 0 || len(circ.Gates) > caps.MaxGates {
			t.Fatalf("accepted %d gates (cap %d)", len(circ.Gates), caps.MaxGates)
		}
		if spec.Shots < 0 || spec.Shots > caps.MaxShots {
			t.Fatalf("accepted %d shots (cap %d)", spec.Shots, caps.MaxShots)
		}
		switch spec.Priority {
		case "high", "normal", "low":
		default:
			t.Fatalf("accepted priority %q", spec.Priority)
		}
		if _, serr := StrategyFor(spec); serr != nil {
			t.Fatalf("accepted spec with unbuildable strategy: %v", serr)
		}
	})
}
