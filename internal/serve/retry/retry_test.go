package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestDelayDeterministicSchedule pins the un-jittered exponential:
// base·factor^n capped at max, no randomness with a nil source.
func TestDelayDeterministicSchedule(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for n, w := range want {
		if got := p.Delay(n, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

// TestDelayJitterBoundsAndDeterminism: jittered delays stay within
// [(1−j)·d, d] and a seeded source reproduces the exact sequence.
func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5}
	seq := func() []time.Duration {
		rnd := rand.New(rand.NewSource(42))
		var out []time.Duration
		for n := 0; n < 8; n++ {
			out = append(out, p.Delay(n, rnd))
		}
		return out
	}
	a, b := seq(), seq()
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("retry %d: same seed gave %v then %v", n, a[n], b[n])
		}
		full := p.Delay(n, nil)
		if a[n] > full || a[n] < time.Duration(float64(full)*0.5) {
			t.Errorf("retry %d: jittered delay %v outside [%v, %v]", n, a[n], full/2, full)
		}
	}
}

// TestDelayLargeRetryNoOverflow: absurd retry counts saturate at Max
// instead of overflowing the float→Duration conversion.
func TestDelayLargeRetryNoOverflow(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute, Factor: 10, Jitter: 0}
	if got := p.Delay(1<<20, nil); got != time.Minute {
		t.Fatalf("Delay(huge) = %v, want %v", got, time.Minute)
	}
	if got := p.Delay(-3, nil); got != time.Second {
		t.Fatalf("Delay(-3) = %v, want base %v", got, time.Second)
	}
}

// TestDefaults: the zero policy resolves to the documented defaults.
func TestDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0, nil); got != 100*time.Millisecond {
		t.Errorf("default base = %v, want 100ms", got)
	}
	if got := p.MaxAttempts(); got != 4 {
		t.Errorf("default attempts = %d, want 4", got)
	}
	if got := (Policy{Attempts: -1}).MaxAttempts(); got != 1 {
		t.Errorf("Attempts -1 → %d, want 1", got)
	}
}

// fakeSleeper records requested delays without sleeping.
type fakeSleeper struct {
	delays []time.Duration
	err    error
}

func (s *fakeSleeper) sleep(_ context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return s.err
}

// TestDoRetriesUntilSuccess: Do retries with the exact policy schedule
// (observed through the injected sleeper) and stops on success.
func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0, Attempts: 5}
	sl := &fakeSleeper{}
	calls := 0
	err := Do(context.Background(), p, sl.sleep, nil, nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("f ran %d times, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(sl.delays) != len(want) {
		t.Fatalf("slept %v, want %v", sl.delays, want)
	}
	for i := range want {
		if sl.delays[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, sl.delays[i], want[i])
		}
	}
}

// TestDoAttemptCap: the loop gives up after MaxAttempts tries and
// marks the error.
func TestDoAttemptCap(t *testing.T) {
	p := Policy{Base: time.Millisecond, Attempts: 3, Jitter: 0}
	sl := &fakeSleeper{}
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), p, sl.sleep, nil, nil, func(context.Context) error {
		calls++
		return boom
	})
	if calls != 3 {
		t.Fatalf("f ran %d times, want 3", calls)
	}
	if !errors.Is(err, ErrAttemptsExhausted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrAttemptsExhausted joined with cause", err)
	}
	if len(sl.delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(sl.delays))
	}
}

// TestDoPermanentError: a non-retryable error stops the loop at once.
func TestDoPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 10}, (&fakeSleeper{}).sleep, nil,
		func(err error) bool { return !errors.Is(err, perm) },
		func(context.Context) error { calls++; return perm })
	if calls != 1 {
		t.Fatalf("f ran %d times, want 1", calls)
	}
	if !errors.Is(err, perm) || errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v, want bare permanent error", err)
	}
}

// TestDoContextCancelled: cancellation interrupts the wait and is
// joined onto the last error; a pre-cancelled context never runs f.
func TestDoContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sl := &fakeSleeper{err: context.Canceled}
	boom := errors.New("boom")
	err := Do(ctx, Policy{Attempts: 5}, sl.sleep, nil, nil, func(context.Context) error { return boom })
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want boom joined with context.Canceled", err)
	}

	cancel()
	calls := 0
	err = Do(ctx, Policy{}, sl.sleep, nil, nil, func(context.Context) error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: calls=%d err=%v", calls, err)
	}
}

// TestSleepHonoursContext: the real sleeper returns promptly on
// cancellation.
func TestSleepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancelled ctx: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancellation")
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("short real sleep: %v", err)
	}
}
