// Package retry implements capped exponential backoff with jitter for
// transient-failure recovery. It is the retry policy of the ddserve
// job scheduler (see internal/serve), but knows nothing about jobs:
// the policy computes delays, and Do drives a retry loop around any
// context-aware operation.
//
// Jitter exists to break retry synchronisation: when many jobs fail at
// once (a node-budget squeeze, a chaos burst), full-jitter spreading
// keeps their retries from stampeding back in lockstep. Delays are
// deterministic given the *rand.Rand supplied, so tests inject a
// seeded source and assert the exact schedule.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy describes a backoff schedule: the delay before retry n
// (0-based) is Base·Factor^n, capped at Max, then jittered by drawing
// uniformly from [(1−Jitter)·d, d].
type Policy struct {
	// Base is the delay before the first retry. Zero selects 100ms.
	Base time.Duration
	// Max caps the un-jittered delay. Zero selects 30s.
	Max time.Duration
	// Factor is the per-retry multiplier. Values below 1 select 2.
	Factor float64
	// Jitter is the fraction of the delay drawn at random, in [0, 1]:
	// 0 is fully deterministic, 1 is "full jitter" over (0, d]. Negative
	// or out-of-range values select 0.5.
	Jitter float64
	// Attempts caps the total number of tries Do makes (first try
	// included). Zero selects 4; negative means a single try.
	Attempts int
}

func (p Policy) base() time.Duration {
	if p.Base <= 0 {
		return 100 * time.Millisecond
	}
	return p.Base
}

func (p Policy) max() time.Duration {
	if p.Max <= 0 {
		return 30 * time.Second
	}
	return p.Max
}

func (p Policy) factor() float64 {
	if p.Factor < 1 {
		return 2
	}
	return p.Factor
}

func (p Policy) jitter() float64 {
	if p.Jitter < 0 || p.Jitter > 1 {
		return 0.5
	}
	return p.Jitter
}

// MaxAttempts resolves the effective attempt cap (always ≥ 1).
func (p Policy) MaxAttempts() int {
	switch {
	case p.Attempts == 0:
		return 4
	case p.Attempts < 1:
		return 1
	}
	return p.Attempts
}

// Delay returns the backoff before retry n (0-based: Delay(0, …) is
// the wait between the first failure and the second try). The
// exponential is computed by repeated multiplication with an early cap
// so large n cannot overflow. A nil rnd disables jitter, making the
// schedule fully deterministic.
func (p Policy) Delay(retry int, rnd *rand.Rand) time.Duration {
	if retry < 0 {
		retry = 0
	}
	d := float64(p.base())
	limit := float64(p.max())
	f := p.factor()
	for i := 0; i < retry && d < limit; i++ {
		d *= f
	}
	if d > limit {
		d = limit
	}
	if j := p.jitter(); j > 0 && rnd != nil {
		d = d * (1 - j + j*rnd.Float64())
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Sleeper waits for d or until ctx is done, returning the context's
// error when cancelled first. Tests inject one to run the loop
// without real sleeping; nil selects the real timer-backed sleep.
type Sleeper func(ctx context.Context, d time.Duration) error

// Sleep is the default Sleeper: a timer honouring cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ErrAttemptsExhausted is joined onto the final error when Do gives up
// because the attempt cap was reached; match with errors.Is.
var ErrAttemptsExhausted = errors.New("retry: attempts exhausted")

// Do runs f up to p.MaxAttempts() times, sleeping p.Delay between
// tries, until f succeeds, f's error is marked permanent by retryable
// (nil treats every error as transient), or ctx is cancelled. The
// returned error is f's last error — joined with ErrAttemptsExhausted
// when the cap stopped the loop — or the context error when the wait
// was interrupted. sleep nil selects Sleep; rnd nil disables jitter.
func Do(ctx context.Context, p Policy, sleep Sleeper, rnd *rand.Rand, retryable func(error) bool, f func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if sleep == nil {
		sleep = Sleep
	}
	attempts := p.MaxAttempts()
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return errors.Join(err, cerr)
			}
			return cerr
		}
		if err = f(ctx); err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if attempt+1 >= attempts {
			return errors.Join(err, ErrAttemptsExhausted)
		}
		if serr := sleep(ctx, p.Delay(attempt, rnd)); serr != nil {
			return errors.Join(err, serr)
		}
	}
}
