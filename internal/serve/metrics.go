package serve

import (
	"sync"

	"repro/internal/obs"
)

// maxClientLabels caps the number of distinct client label values the
// registry will grow; clients beyond the cap are folded into "other"
// so a client-id-per-request caller cannot balloon the metric space.
const maxClientLabels = 64

// serveMetrics instruments the server. All per-client series go
// through clientLabel for cardinality control.
type serveMetrics struct {
	reg *obs.Registry

	mu      sync.Mutex
	clients map[string]string

	queueDepthHint *obs.Gauge
	retriesPending *obs.Gauge
	jobsParked     *obs.Counter
	jobsDone       *obs.Counter
	jobsFailed     *obs.Counter
	retries        *obs.Counter
	recovered      *obs.Counter
	pressureEvents *obs.Counter
	pressureParks  *obs.Counter
	jobSeconds     *obs.Histogram
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &serveMetrics{
		reg:     reg,
		clients: make(map[string]string),
		retriesPending: reg.Gauge("serve_retries_pending",
			"Jobs waiting out a backoff delay before re-admission."),
		jobsParked: reg.Counter("serve_jobs_parked_total",
			"Jobs checkpointed and parked by a graceful drain."),
		jobsDone: reg.Counter("serve_jobs_done_total",
			"Jobs that reached the done terminal state."),
		jobsFailed: reg.Counter("serve_jobs_failed_total",
			"Jobs that reached the failed terminal state."),
		retries: reg.Counter("serve_job_retries_total",
			"Backoff retries scheduled after retryable failures."),
		recovered: reg.Counter("serve_jobs_recovered_total",
			"Non-terminal jobs re-admitted from the journal at startup."),
		pressureEvents: reg.Counter("serve_pressure_events_total",
			"Governor degradations at high or critical level reported by running jobs."),
		pressureParks: reg.Counter("serve_pressure_parks_total",
			"Jobs parked under memory pressure (own governor or server-chosen victim)."),
		jobSeconds: reg.Histogram("serve_job_seconds",
			"Wall-clock duration of successful job runs.",
			obs.ExponentialBuckets(0.001, 4, 10)),
	}
}

// clientLabel maps a raw client ID to a bounded, sanitised label
// value.
func (m *serveMetrics) clientLabel(client string) string {
	if client == "" {
		client = "anon"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.clients[client]; ok {
		return l
	}
	l := sanitizeLabel(client)
	if len(m.clients) >= maxClientLabels {
		l = "other"
	}
	m.clients[client] = l
	return l
}

func sanitizeLabel(s string) string {
	const maxLen = 40
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s) && len(b) < maxLen; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "anon"
	}
	return string(b)
}

func (m *serveMetrics) admitted(client string) {
	m.reg.Counter(obs.Label("serve_jobs_admitted_total", "client", m.clientLabel(client)),
		"Jobs admitted (journaled and queued), per client.").Inc()
}

func (m *serveMetrics) rejected(reason string) {
	m.reg.Counter(obs.Label("serve_jobs_rejected_total", "reason", reason),
		"Submissions refused by admission control, per reason.").Inc()
}
