// Package algos provides additional textbook quantum algorithms —
// Bernstein–Vazirani, Deutsch–Jozsa and quantum phase estimation —
// used as extra workloads for the simulator and as end-to-end sanity
// checks: all three have classically known outcomes the tests verify.
// They are also classic decision-diagram-friendly benchmarks: their
// states stay highly structured, so DD sizes remain small even for
// large registers.
package algos

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/qft"
)

// BernsteinVazirani returns the circuit recovering the secret bit mask
// s from one query to the parity oracle f(x) = s·x (mod 2). The
// register layout is qubits [0, n) for the input and qubit n for the
// phase ancilla; measuring the input register yields s with certainty.
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("algos: BernsteinVazirani: bad register size %d", n))
	}
	if secret >= 1<<uint(n) {
		panic(fmt.Sprintf("algos: BernsteinVazirani: secret %d out of range", secret))
	}
	c := circuit.New(n + 1)
	c.Name = fmt.Sprintf("bv_%d", n)
	anc := n
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if secret>>uint(q)&1 == 1 {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// DeutschJozsa returns the circuit distinguishing a constant from a
// balanced oracle with one query. When balanced is true the oracle is
// the parity over mask (which must be non-zero); otherwise it is the
// constant function (constOne selects f ≡ 1). Measuring the input
// register yields all zeros iff the function is constant.
func DeutschJozsa(n int, balanced bool, mask uint64, constOne bool) *circuit.Circuit {
	if n < 1 || n > 62 {
		panic(fmt.Sprintf("algos: DeutschJozsa: bad register size %d", n))
	}
	if balanced && (mask == 0 || mask >= 1<<uint(n)) {
		panic(fmt.Sprintf("algos: DeutschJozsa: balanced oracle needs mask in (0, 2^n), got %d", mask))
	}
	c := circuit.New(n + 1)
	c.Name = fmt.Sprintf("dj_%d", n)
	anc := n
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	switch {
	case balanced:
		for q := 0; q < n; q++ {
			if mask>>uint(q)&1 == 1 {
				c.CX(q, anc)
			}
		}
	case constOne:
		c.X(anc)
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// PhaseEstimation returns the textbook quantum-phase-estimation
// circuit measuring the eigenphase θ of the single-qubit phase gate
// P(2πθ) on its |1> eigenvector, with t counting qubits. Layout:
// qubits [0, t) form the counting register, qubit t the eigenvector.
// The counting register ends in the best t-bit approximation of θ
// (exactly, when θ = y/2^t). The t controlled power stages are the
// same structure Shor's algorithm uses around its oracle.
func PhaseEstimation(t int, theta float64) *circuit.Circuit {
	if t < 1 || t > 30 {
		panic(fmt.Sprintf("algos: PhaseEstimation: bad counting register size %d", t))
	}
	c := circuit.New(t + 1)
	c.Name = fmt.Sprintf("qpe_%d", t)
	eigen := t
	c.X(eigen) // prepare the |1> eigenvector
	for q := 0; q < t; q++ {
		c.H(q)
	}
	for q := 0; q < t; q++ {
		// Counting qubit q controls U^{2^q}: the phase gate with angle
		// 2πθ·2^q.
		angle := 2 * math.Pi * theta * float64(uint64(1)<<uint(q))
		c.CP(angle, q, eigen)
	}
	// Inverse QFT on the counting register (most significant first).
	counting := make([]int, t)
	for i := range counting {
		counting[i] = t - 1 - i
	}
	qft.AppendInverse(c, counting, true)
	return c
}
