package algos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// measureInputRegister returns the probability distribution over the
// first n qubits (marginalising the ancilla).
func inputProbs(t *testing.T, res *core.Result, n int) []float64 {
	t.Helper()
	probs := res.State.Probabilities()
	out := make([]float64, 1<<uint(n))
	mask := uint64(1)<<uint(n) - 1
	for i, p := range probs {
		out[uint64(i)&mask] += p
	}
	return out
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 7, 12} {
		secret := uint64(rng.Intn(1 << uint(n)))
		c := BernsteinVazirani(n, secret)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(c, core.Options{Strategy: core.KOperations{K: 4}})
		if err != nil {
			t.Fatal(err)
		}
		probs := inputProbs(t, res, n)
		if math.Abs(probs[secret]-1) > 1e-9 {
			t.Fatalf("n=%d secret=%b: P = %v", n, secret, probs[secret])
		}
	}
}

func TestBernsteinVaziraniStaysCompact(t *testing.T) {
	// BV states are tensor products throughout: the DD must stay O(n)
	// even for large registers — far beyond dense simulation reach is
	// trivial here.
	n := 40
	c := BernsteinVazirani(n, 0x5555555555&(1<<uint(n)-1))
	res, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Engine.SizeV(res.State); s > n+1 {
		t.Fatalf("BV state DD has %d nodes, want <= %d", s, n+1)
	}
}

func TestBernsteinVaziraniPanics(t *testing.T) {
	mustPanic(t, func() { BernsteinVazirani(0, 0) })
	mustPanic(t, func() { BernsteinVazirani(3, 8) })
}

func TestDeutschJozsaConstant(t *testing.T) {
	for _, constOne := range []bool{false, true} {
		c := DeutschJozsa(5, false, 0, constOne)
		res, err := core.Run(c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		probs := inputProbs(t, res, 5)
		if math.Abs(probs[0]-1) > 1e-9 {
			t.Fatalf("constant oracle (one=%v): P(0…0) = %v, want 1", constOne, probs[0])
		}
	}
}

func TestDeutschJozsaBalanced(t *testing.T) {
	c := DeutschJozsa(5, true, 0b10110, false)
	res, err := core.Run(c, core.Options{Strategy: core.MaxSize{SMax: 32}})
	if err != nil {
		t.Fatal(err)
	}
	probs := inputProbs(t, res, 5)
	if probs[0] > 1e-9 {
		t.Fatalf("balanced oracle: P(0…0) = %v, want 0", probs[0])
	}
	// For a parity oracle the measurement is deterministic: the mask.
	if math.Abs(probs[0b10110]-1) > 1e-9 {
		t.Fatalf("balanced parity oracle: P(mask) = %v", probs[0b10110])
	}
}

func TestDeutschJozsaPanics(t *testing.T) {
	mustPanic(t, func() { DeutschJozsa(3, true, 0, false) })
	mustPanic(t, func() { DeutschJozsa(3, true, 8, false) })
}

func TestPhaseEstimationExact(t *testing.T) {
	for _, tc := range []struct {
		t int
		y uint64 // θ = y / 2^t
	}{
		{4, 3}, {5, 11}, {6, 1}, {6, 63},
	} {
		theta := float64(tc.y) / float64(uint64(1)<<uint(tc.t))
		c := PhaseEstimation(tc.t, theta)
		res, err := core.Run(c, core.Options{Strategy: core.KOperations{K: 8}})
		if err != nil {
			t.Fatal(err)
		}
		probs := inputProbs(t, res, tc.t)
		if math.Abs(probs[tc.y]-1) > 1e-7 {
			t.Fatalf("t=%d θ=%v: P(y=%d) = %v, want 1", tc.t, theta, tc.y, probs[tc.y])
		}
	}
}

func TestPhaseEstimationApproximate(t *testing.T) {
	// An inexact θ concentrates near the best t-bit approximations:
	// the top outcome must be within 1/2^t of θ and carry the known
	// lower bound 4/π² of the probability mass.
	tq := 6
	theta := 0.3217
	c := PhaseEstimation(tq, theta)
	res, err := core.Run(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	probs := inputProbs(t, res, tq)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	gotTheta := float64(best) / float64(uint64(1)<<uint(tq))
	if math.Abs(gotTheta-theta) > 1.0/float64(uint64(1)<<uint(tq)) {
		t.Fatalf("best estimate %v too far from θ=%v", gotTheta, theta)
	}
	if probs[best] < 4/(math.Pi*math.Pi) {
		t.Fatalf("peak probability %v below the 4/π² bound", probs[best])
	}
}

func TestPhaseEstimationPanics(t *testing.T) {
	mustPanic(t, func() { PhaseEstimation(0, 0.5) })
	mustPanic(t, func() { PhaseEstimation(40, 0.5) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
