// Package cnum provides tolerance-aware handling of the complex edge
// weights used throughout the decision-diagram engine.
//
// Floating-point rounding means that two computations of the "same"
// amplitude rarely produce bit-identical complex128 values. Decision
// diagrams, however, derive their compactness from recognising equal
// sub-structures, so weights must be compared — and, for hash-consing,
// canonicalised — up to a tolerance. This package supplies:
//
//   - approximate comparison helpers (Eq, IsZero, IsOne),
//   - a quantisation Key usable in hash tables, and
//   - a Table that maps each weight to a canonical representative so that
//     all values within tolerance of each other share one bit pattern.
//
// The approach follows the accuracy/compactness treatment of
// Zulehner, Niemann, Drechsler, Wille (DATE 2019, ref [21] of the paper).
package cnum

import (
	"math"
	"math/cmplx"
)

// Tol is the default tolerance under which two floating-point values are
// considered equal. It matches the magnitude used by the JKU DD package.
const Tol = 1e-10

// Common constants used pervasively by gate definitions and the engine.
var (
	Zero = complex(0, 0)
	One  = complex(1, 0)
	// SqrtHalf is 1/√2, the Hadamard weight.
	SqrtHalf = complex(math.Sqrt2/2, 0)
)

// EqFloat reports whether two float64 values are equal within Tol.
func EqFloat(a, b float64) bool {
	return math.Abs(a-b) < Tol
}

// Eq reports whether two complex values are equal within Tol in both the
// real and the imaginary component.
func Eq(a, b complex128) bool {
	return EqFloat(real(a), real(b)) && EqFloat(imag(a), imag(b))
}

// IsZero reports whether c is zero within Tol.
func IsZero(c complex128) bool {
	return Eq(c, Zero)
}

// IsOne reports whether c is one within Tol.
func IsOne(c complex128) bool {
	return Eq(c, One)
}

// Key is a tolerance-quantised fingerprint of a complex value. Values
// whose components fall into the same quantisation cell share a Key.
// Values within Tol of each other land in the same or an adjacent cell;
// Table handles the adjacent-cell case.
type Key struct {
	Re, Im int64
}

// quantum is the cell width of the quantisation grid. It is a few times
// the tolerance so that values within Tol of a cell centre stay inside.
const quantum = 4 * Tol

// KeyOf returns the quantisation key of c.
func KeyOf(c complex128) Key {
	return Key{
		Re: int64(math.Round(real(c) / quantum)),
		Im: int64(math.Round(imag(c) / quantum)),
	}
}

// Table canonicalises complex values: Lookup returns, for every value,
// a representative such that any two inputs within Tol of each other
// return the identical bit pattern. Node hash-consing in the DD engine
// may then use exact comparison on canonical weights.
//
// Storage is an open-addressing hash table over quantisation keys
// (power-of-two capacity, linear probing, doubling at 3/4 load). A cell
// may hold several representatives — they then occupy separate slots
// with equal keys on the same probe chain. Lookup sits on the node
// creation hot path, where the previous map-of-slices layout cost nine
// map lookups plus an allocation per new weight.
//
// The zero Table is ready to use.
type Table struct {
	slots  []tableSlot
	count  int
	hits   uint64
	misses uint64
}

type tableSlot struct {
	key  Key
	rep  complex128
	used bool
}

const tableInitSlots = 256

// hashKey mixes a quantisation key into a slot hash.
func hashKey(k Key) uint32 {
	h := uint64(k.Re)*0x9e3779b97f4a7c15 ^ uint64(k.Im)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return uint32(h)
}

// Lookup returns the canonical representative of c, registering c as a
// new representative if no existing one is within tolerance. Exact zero
// and one short-circuit so that the ubiquitous structural weights stay
// bit-exact.
func (t *Table) Lookup(c complex128) complex128 {
	if c == Zero || c == One {
		return c
	}
	if IsZero(c) {
		return Zero
	}
	if Eq(c, One) {
		return One
	}
	if t.slots == nil {
		t.slots = make([]tableSlot, tableInitSlots)
	}
	k := KeyOf(c)
	// A value within Tol of c may have been quantised into a neighbouring
	// cell; probe the 3×3 neighbourhood.
	mask := uint32(len(t.slots) - 1)
	for dr := int64(-1); dr <= 1; dr++ {
		for di := int64(-1); di <= 1; di++ {
			nk := Key{k.Re + dr, k.Im + di}
			for i := hashKey(nk) & mask; t.slots[i].used; i = (i + 1) & mask {
				if t.slots[i].key == nk && Eq(t.slots[i].rep, c) {
					t.hits++
					return t.slots[i].rep
				}
			}
		}
	}
	t.misses++
	t.insert(k, c)
	return c
}

// insert registers a new representative, growing the table as needed.
func (t *Table) insert(k Key, c complex128) {
	if (t.count+1)*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := uint32(len(t.slots) - 1)
	i := hashKey(k) & mask
	for t.slots[i].used {
		i = (i + 1) & mask
	}
	t.slots[i] = tableSlot{key: k, rep: c, used: true}
	t.count++
}

func (t *Table) grow() {
	old := t.slots
	t.slots = make([]tableSlot, 2*len(old))
	mask := uint32(len(t.slots) - 1)
	for _, s := range old {
		if !s.used {
			continue
		}
		i := hashKey(s.key) & mask
		for t.slots[i].used {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}

// Canonical reports whether c is exactly a value Lookup could have
// returned: one of the exact zero/one short-circuits, or bit-identical
// to a stored representative. Unlike Lookup it never inserts, which
// makes it safe for integrity audits of a live table — every edge
// weight a DD engine stores went through Lookup, so a weight for which
// Canonical is false has been corrupted after canonicalisation.
func (t *Table) Canonical(c complex128) bool {
	if c == Zero || c == One {
		return true
	}
	// A value within tolerance of zero/one but not bit-equal can never
	// come out of Lookup (the short-circuits fire first).
	if IsZero(c) || Eq(c, One) {
		return false
	}
	if t.slots == nil {
		return false
	}
	// Bit-identity implies the same quantisation key, so only the exact
	// cell needs probing (Lookup's 3×3 neighbourhood scan is for
	// tolerance matches of *different* bit patterns).
	k := KeyOf(c)
	mask := uint32(len(t.slots) - 1)
	for i := hashKey(k) & mask; t.slots[i].used; i = (i + 1) & mask {
		if t.slots[i].key == k && t.slots[i].rep == c {
			return true
		}
	}
	return false
}

// Size returns the number of distinct representatives stored.
func (t *Table) Size() int { return t.count }

// Stats returns the number of Lookup calls that were answered from an
// existing representative (hits) and the number that registered a new
// one (misses). Exact zero/one short-circuits are counted in neither.
func (t *Table) Stats() (hits, misses uint64) {
	return t.hits, t.misses
}

// Reset discards all representatives and statistics.
func (t *Table) Reset() {
	t.slots = nil
	t.count = 0
	t.hits, t.misses = 0, 0
}

// Abs2 returns |c|², the squared magnitude — the probability weight of an
// amplitude.
func Abs2(c complex128) float64 {
	return real(c)*real(c) + imag(c)*imag(c)
}

// Polar returns the magnitude and phase of c, convenience over cmplx.
func Polar(c complex128) (r, theta float64) {
	return cmplx.Polar(c)
}
