package cnum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEqBasics(t *testing.T) {
	cases := []struct {
		a, b complex128
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{complex(1, 0), complex(1, Tol/2), true},
		{complex(1, 0), complex(1, 10*Tol), false},
		{complex(0.5, -0.5), complex(0.5+Tol/3, -0.5-Tol/3), true},
		{complex(0.5, -0.5), complex(-0.5, 0.5), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsZeroIsOne(t *testing.T) {
	if !IsZero(complex(Tol/4, -Tol/4)) {
		t.Error("near-zero not recognised as zero")
	}
	if IsZero(complex(3*Tol, 0)) {
		t.Error("3*Tol wrongly recognised as zero")
	}
	if !IsOne(complex(1+Tol/4, Tol/4)) {
		t.Error("near-one not recognised as one")
	}
	if IsOne(complex(1, 1)) {
		t.Error("1+i wrongly recognised as one")
	}
}

func TestKeyOfStable(t *testing.T) {
	a := complex(0.123456789, -0.987654321)
	if KeyOf(a) != KeyOf(a) {
		t.Fatal("KeyOf not deterministic")
	}
}

func TestTableCanonicalises(t *testing.T) {
	var tbl Table
	a := complex(1/math.Sqrt2, 0)
	b := complex(1/math.Sqrt2+Tol/5, Tol/7)
	ca := tbl.Lookup(a)
	cb := tbl.Lookup(b)
	if ca != cb {
		t.Fatalf("values within Tol got different representatives: %v vs %v", ca, cb)
	}
	if tbl.Size() != 1 {
		t.Fatalf("Size = %d, want 1", tbl.Size())
	}
	hits, misses := tbl.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d,%d), want (1,1)", hits, misses)
	}
}

func TestTableZeroOneShortCircuit(t *testing.T) {
	var tbl Table
	if tbl.Lookup(0) != Zero {
		t.Error("Lookup(0) != Zero")
	}
	if tbl.Lookup(1) != One {
		t.Error("Lookup(1) != One")
	}
	if tbl.Lookup(complex(Tol/10, 0)) != Zero {
		t.Error("near-zero should canonicalise to exact Zero")
	}
	if tbl.Lookup(complex(1, Tol/10)) != One {
		t.Error("near-one should canonicalise to exact One")
	}
	if tbl.Size() != 0 {
		t.Errorf("Size = %d, want 0 (zero/one are not stored)", tbl.Size())
	}
}

func TestTableDistinctValues(t *testing.T) {
	var tbl Table
	vals := []complex128{
		complex(0.1, 0), complex(0.2, 0), complex(0.1, 0.1),
		complex(-0.1, 0), complex(0, 0.1),
	}
	for _, v := range vals {
		tbl.Lookup(v)
	}
	if tbl.Size() != len(vals) {
		t.Fatalf("Size = %d, want %d", tbl.Size(), len(vals))
	}
	// Looking the same values up again must not grow the table.
	for _, v := range vals {
		if got := tbl.Lookup(v); got != v {
			t.Errorf("Lookup(%v) = %v, want identity", v, got)
		}
	}
	if tbl.Size() != len(vals) {
		t.Fatalf("Size after re-lookup = %d, want %d", tbl.Size(), len(vals))
	}
}

func TestTableReset(t *testing.T) {
	var tbl Table
	tbl.Lookup(complex(0.3, 0.4))
	tbl.Reset()
	if tbl.Size() != 0 {
		t.Fatal("Reset did not clear the table")
	}
	h, m := tbl.Stats()
	if h != 0 || m != 0 {
		t.Fatal("Reset did not clear the statistics")
	}
}

// Property: canonicalisation is idempotent and stays within Tol of the
// input.
func TestTableLookupIdempotentProperty(t *testing.T) {
	var tbl Table
	f := func(re, im float64) bool {
		// Keep values in a sane range; amplitudes are bounded by 1 anyway.
		re = math.Mod(re, 2)
		im = math.Mod(im, 2)
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		c := complex(re, im)
		r1 := tbl.Lookup(c)
		r2 := tbl.Lookup(r1)
		return r1 == r2 && Eq(r1, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: two values within Tol/2 of each other always share a
// representative, no matter where they fall relative to cell boundaries.
func TestTableMergesCloseValuesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var tbl Table
		base := complex(rng.Float64()*2-1, rng.Float64()*2-1)
		eps := complex((rng.Float64()-0.5)*Tol, (rng.Float64()-0.5)*Tol)
		if tbl.Lookup(base) != tbl.Lookup(base+eps) {
			t.Fatalf("values %v and %v (within Tol) got distinct representatives", base, base+eps)
		}
	}
}

func TestAbs2(t *testing.T) {
	if got := Abs2(complex(3, 4)); !EqFloat(got, 25) {
		t.Errorf("Abs2(3+4i) = %v, want 25", got)
	}
	if got := Abs2(SqrtHalf); !EqFloat(got, 0.5) {
		t.Errorf("Abs2(1/sqrt2) = %v, want 0.5", got)
	}
}

func TestPolar(t *testing.T) {
	r, theta := Polar(complex(0, 2))
	if !EqFloat(r, 2) || !EqFloat(theta, math.Pi/2) {
		t.Errorf("Polar(2i) = (%v,%v), want (2, pi/2)", r, theta)
	}
}

func BenchmarkTableLookupHit(b *testing.B) {
	var tbl Table
	c := complex(1/math.Sqrt2, 0)
	tbl.Lookup(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(c)
	}
}

func BenchmarkTableLookupMiss(b *testing.B) {
	var tbl Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(complex(float64(i)*1e-3, 0))
	}
}

// TestCanonical exercises the read-only canonicality probe used by the
// integrity audit: exact sentinels pass, interned representatives pass,
// near-misses within tolerance (but not bit-identical) fail, and
// probing never interns.
func TestCanonical(t *testing.T) {
	var tbl Table
	if !tbl.Canonical(Zero) || !tbl.Canonical(One) {
		t.Fatal("exact sentinels rejected")
	}
	a := complex(1/math.Sqrt2, 0)
	if tbl.Canonical(a) {
		t.Fatal("un-interned value accepted")
	}
	rep := tbl.Lookup(a)
	if !tbl.Canonical(rep) {
		t.Fatal("interned representative rejected")
	}
	near := rep + complex(Tol/5, 0)
	if tbl.Canonical(near) {
		t.Fatal("near-miss within tolerance accepted (not bit-identical)")
	}
	size := tbl.Size()
	tbl.Canonical(complex(0.123, 0.456))
	if tbl.Size() != size {
		t.Fatal("Canonical interned a value")
	}
}
