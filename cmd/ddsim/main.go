// Command ddsim simulates a quantum circuit with a selectable
// operation-combination strategy and reports the resulting state,
// samples, and simulation statistics. Both the native textual format
// (see internal/circuit) and OpenQASM 2.0 are accepted; the format is
// auto-detected.
//
// Usage:
//
//	ddsim -file circuit.qc -strategy max-size -smax 128 -shots 10
//	ddsim -file bell.qasm -top 4
//	ddsim -file - < circuit.qc       # read from stdin
//	ddsim -file grover.qc -shots 1000 -parallel 8   # fan sampling out
//
// -shots K -parallel N fans K measurement-sampling runs across a pool
// of N workers, each job on its own freshly created engine with its
// own rng stream (seed + job index); -max-nodes then acts as a total
// budget split across the in-flight workers. Dynamic OpenQASM programs
// (measure/reset/if) fan their shot loop out the same way.
//
// Strategies: sequential (default), k-operations (-k), max-size
// (-smax), adaptive (-ratio), planner (-window, -ratio, -growth — the
// cost-model-driven adaptive planner), combine-all. -blocks
// additionally enables the DD-repeating treatment of "repeat" blocks in
// the input. -dot dumps the final state DD in Graphviz format.
//
// -reorder selects variable reordering: "static" derives an initial
// variable order from the circuit's qubit-interaction graph before the
// run, "sifting" additionally re-sifts the order whenever the state DD
// grows past a threshold (amplitudes and samples are always reported in
// circuit qubit order regardless of the internal level permutation).
//
// Resilience: -timeout bounds the wall-clock time, -max-nodes bounds
// live DD nodes (combination strategies degrade to sequential replay
// under the cap unless -no-fallback is set), -checkpoint periodically
// saves a resumable snapshot that -resume restarts from.
//
// Verification: -verify-every N audits the engine and state DD every N
// gates (structural invariants, weight canonicality, norm drift,
// unitarity of accumulated matrices); -paranoid additionally compares
// every verified state against a dense reference simulation (≤ 24
// qubits). Detected corruption triggers an automatic repair — the
// state is rebuilt into a fresh engine from the last verified snapshot
// and the gap replayed — reported in the "repairs" output line.
// Unrepairable corruption exits with status 7. -fsck checks a
// checkpoint file (format, per-section CRC32, state DD audit, norm)
// without simulating.
//
// Aborted runs print a partial-progress report and exit with a
// distinct status:
//
//	0 success   2 usage      4 node budget exceeded   6 internal panic
//	1 error     3 timeout    5 canceled                7 state corruption
//	8 parked under memory pressure (resumable checkpoint written)
//
// -soft-budget arms the memory-pressure governor: as live nodes
// approach the target the run degrades in stages (emergency GC, flush
// and sequential pinning, sifting) instead of aborting at the -max-nodes
// cliff; -degrade approx additionally allows fidelity-bounded state
// truncation, with the resulting bound reported. A run whose ladder is
// exhausted parks behind a checkpoint and exits 8.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/cnum"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/opt"
	"repro/internal/qasm"
)

func main() {
	var (
		file      = flag.String("file", "", "circuit file ('-' for stdin)")
		strategy  = flag.String("strategy", "sequential", core.StrategyUsage())
		k         = flag.Int("k", 4, "k for strategy k-operations")
		smax      = flag.Int("smax", 128, "s_max for strategy max-size")
		window    = flag.Int("window", 0, "maximum combination window for strategy planner (0 = default 1024)")
		growth    = flag.Float64("growth", 0, "proactive-flush lookahead in gates for strategy planner (0 = default 2)")
		blocks    = flag.Bool("blocks", false, "exploit repeated blocks (DD-repeating)")
		shots     = flag.Int("shots", 0, "measurement samples to draw from the final state")
		parallel  = flag.Int("parallel", 1, "fan -shots sampling runs across a worker pool of this many workers (each on its own engine; -max-nodes is split across in-flight workers)")
		seed      = flag.Int64("seed", 1, "random seed for sampling")
		top       = flag.Int("top", 8, "print the N largest-probability amplitudes")
		showTrace = flag.Bool("trace", false, "print per-step DD sizes")
		ratio     = flag.Float64("ratio", 1, "op/state size ratio for strategy adaptive")
		dotOut    = flag.String("dot", "", "write the final state DD in Graphviz DOT format to this file")
		optimize  = flag.Bool("optimize", false, "run the peephole optimiser before simulating")
		reorder   = flag.String("reorder", "off", "variable reordering: off, static (interaction-graph order derived before the run), or sifting (dynamic sifting when the state DD grows)")
		stats     = flag.Bool("stats", false, "print engine statistics (cache hit rates, GC, memory layout)")
		noIDSkip  = flag.Bool("no-identity-skip", false, "disable the identity short-circuits in the multiplication kernels (results are identical; use with -stats to measure the optimisation)")

		traceOut   = flag.String("trace-out", "", "write the structured event stream (one JSON object per step/GC/abort) to this file")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file (JSON, or Prometheus text if the path ends in .prom)")
		progress   = flag.Bool("progress", false, "print throttled progress lines to stderr while simulating")
		pprofDir   = flag.String("pprof", "", "write cpu.pprof and heap.pprof profiles into this directory")

		timeout    = flag.Duration("timeout", 0, "abort the simulation after this wall-clock duration (0 = none)")
		maxNodes   = flag.Int("max-nodes", 0, "abort operations whose live DD nodes exceed this budget (0 = unlimited)")
		noFallback = flag.Bool("no-fallback", false, "fail immediately on a node-budget abort instead of replaying the gate run sequentially")
		softBudget = flag.Int("soft-budget", 0, "arm the memory-pressure governor at this live-node target: degrade in stages near it instead of aborting at -max-nodes (0 = off unless -degrade is set)")
		degrade    = flag.String("degrade", "", "governor mode: off, ladder (exact measures only), or approx (adds fidelity-bounded truncation; bound is reported)")
		approxNode = flag.Int("approx-nodes", 0, "state-size target of the approximation rung (-degrade approx; 0 = soft budget / 4)")
		ckptPath   = flag.String("checkpoint", "", "save a resumable checkpoint to this file (periodically and on abort)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "gates between periodic checkpoints (0 = checkpoint only on abort)")
		resume     = flag.String("resume", "", "resume from a checkpoint file written by -checkpoint")

		verifyEvery = flag.Int("verify-every", 0, "run integrity verification every N applied gates (0 = off)")
		paranoid    = flag.Bool("paranoid", false, "lockstep-compare every verified state against a dense reference simulation (≤ 24 qubits)")
		fsck        = flag.String("fsck", "", "verify a checkpoint file (format, CRCs, state DD audit) and exit")
	)
	flag.Parse()

	if *fsck != "" {
		runFsck(*fsck)
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "ddsim: -file is required")
		flag.Usage()
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	text := string(src)

	st, err := pickStrategy(*strategy, *k, *smax, *ratio, *window, *growth)
	if err != nil {
		fatal(err)
	}

	baseOpt := core.Options{
		Strategy:            st,
		UseBlocks:           *blocks,
		RecordTrace:         *showTrace,
		MaxNodes:            *maxNodes,
		DisableFallback:     *noFallback,
		Seed:                *seed,
		VerifyEvery:         *verifyEvery,
		Paranoid:            *paranoid,
		DisableIdentitySkip: *noIDSkip,
		Reorder:             *reorder,
		SoftBudget:          *softBudget,
		Degrade:             *degrade,
		ApproxNodes:         *approxNode,
	}
	if *timeout > 0 {
		baseOpt.Deadline = time.Now().Add(*timeout)
	}
	octl, err := setupObservability(*traceOut, *metricsOut, *progress, *pprofDir)
	if err != nil {
		fatal(err)
	}
	if octl != nil {
		baseOpt.EventSink = octl.sink
		baseOpt.Metrics = octl.registry
	}

	if *parallel > 1 && (*ckptPath != "" || *resume != "") {
		fmt.Fprintln(os.Stderr, "ddsim: -parallel cannot be combined with -checkpoint or -resume")
		os.Exit(2)
	}

	// OpenQASM programs containing measurements, resets or classical
	// control run as dynamic circuits: one execution per shot, classical
	// histogram reported.
	if isQASM(text) && hasDynamicOps(text) {
		// Dynamic programs measure and reset qubits by level between
		// core runs; they do not thread a permutation, so reordering
		// stays off for them.
		if baseOpt.Reorder != "" && baseOpt.Reorder != "off" {
			fmt.Fprintln(os.Stderr, "ddsim: -reorder is ignored for dynamic programs")
			baseOpt.Reorder = "off"
		}
		runDynamic(text, baseOpt, *shots, *parallel, *seed)
		octl.finish()
		return
	}

	c, err := parseAnyText(text)
	if err != nil {
		fatal(err)
	}
	if *optimize {
		optimised, ostats := opt.Optimize(c)
		fmt.Printf("optimiser:      removed %d of %d gates\n", ostats.Removed(), c.GateCount())
		c = optimised
	}

	runOpt := baseOpt
	eng := dd.New()
	runOpt.Engine = eng
	if *resume != "" {
		ck, err := core.LoadCheckpoint(*resume, eng)
		if err != nil {
			fatal(err)
		}
		// Recorded checkpoint settings win unless the matching flag was
		// given explicitly on this invocation: -seed overrides the
		// recorded seed, -strategy overrides the recorded strategy.
		seedSet, strategySet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				seedSet = true
			case "strategy":
				strategySet = true
			}
		})
		if strategySet {
			ck.Strategy = "" // deliberate override; skip the mismatch check
		} else {
			runOpt.Strategy = nil // adopt the recorded strategy
		}
		runOpt, err = core.ResumeOptions(runOpt, c, ck)
		if err != nil {
			fatal(err)
		}
		if runOpt.Strategy != nil {
			st = runOpt.Strategy
		} else {
			runOpt.Strategy = st
		}
		if !seedSet {
			*seed = ck.Seed
		}
		fmt.Printf("resumed:        %s at gate %d of %d (seed %d, strategy %s, format v%d)\n",
			*resume, ck.NextGate, c.GateCount(), *seed, st.Name(), ck.Version)
	}
	if *ckptPath != "" {
		runOpt.CheckpointEvery = *ckptEvery
		runOpt.OnCheckpoint = func(ck *core.Checkpoint) error {
			return core.SaveCheckpoint(*ckptPath, ck)
		}
	}

	var res *core.Result
	var parCounts map[uint64]int // merged histogram from the parallel fan-out
	if *parallel > 1 && *shots > 0 {
		res, parCounts, err = runParallelShots(c, runOpt, *shots, *parallel, *seed, *maxNodes)
	} else {
		res, err = core.Run(c, runOpt)
	}
	if err != nil {
		// The partial run's telemetry is the interesting part of an
		// aborted run; flush it before reportFailure exits.
		octl.finish()
		reportFailure(res, c, err, *ckptPath)
	}

	fmt.Printf("circuit:        %s (%d qubits, %d gates, depth %d)\n",
		name(c), c.NQubits, c.GateCount(), c.Depth())
	fmt.Printf("strategy:       %s (blocks: %v)\n", st.Name(), *blocks)
	if parCounts != nil {
		fmt.Printf("parallel:       %d sampling runs across %d workers (seed %d + job index)\n",
			len(batch.SplitShots(*shots, *parallel)), *parallel, *seed)
	}
	fmt.Printf("runtime:        %v\n", res.Duration)
	fmt.Printf("mat-vec steps:  %d\n", res.MatVecSteps)
	fmt.Printf("mat-mat steps:  %d\n", res.MatMatSteps)
	if res.Fallbacks > 0 {
		fmt.Printf("fallbacks:      %d (gate runs replayed sequentially under -max-nodes %d)\n",
			res.Fallbacks, *maxNodes)
	}
	if len(res.Degradations) > 0 {
		if res.FidelityBound < 1 {
			fmt.Printf("governor:       %d degradation(s) under -soft-budget %d, fidelity ≥ %.6g\n",
				len(res.Degradations), *softBudget, res.FidelityBound)
		} else {
			fmt.Printf("governor:       %d degradation(s) under -soft-budget %d (all exact)\n",
				len(res.Degradations), *softBudget)
		}
	}
	if *verifyEvery > 0 || *paranoid {
		fmt.Printf("verification:   drift %.2e, %d repair(s)\n", res.NormDrift, res.Repairs)
	} else if res.Repairs > 0 {
		fmt.Printf("repairs:        %d (state rebuilt and replayed after corruption)\n", res.Repairs)
	}
	fmt.Printf("state DD size:  %d nodes\n", res.Engine.SizeV(res.State))
	fmt.Printf("norm:           %.9f\n", res.State.Norm())
	if *reorder != "" && *reorder != "off" {
		order := "identity"
		if res.Order != nil {
			order = fmt.Sprint(res.Order)
		}
		fmt.Printf("reorder:        %s (%d swaps, %d sift passes, final order %s)\n",
			*reorder, res.Stats.ReorderSwaps, res.Stats.SiftPasses, order)
	}

	if *stats {
		printEngineStats(res.Engine)
	}
	if *top > 0 && c.NQubits <= 24 {
		printTopAmplitudes(res, c.NQubits, *top)
	}
	if *shots > 0 {
		counts := parCounts
		if counts == nil {
			rng := rand.New(rand.NewSource(*seed))
			counts = map[uint64]int{}
			for i := 0; i < *shots; i++ {
				// SampleAll draws a DD-indexed basis state; map it back
				// to circuit qubit order before reporting.
				counts[dd.IndexFromDD(res.Order, res.State.SampleAll(rng))]++
			}
		}
		fmt.Printf("samples (%d shots):\n", *shots)
		type kv struct {
			idx uint64
			n   int
		}
		var sorted []kv
		for idx, n := range counts {
			sorted = append(sorted, kv{idx, n})
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].n != sorted[j].n {
				return sorted[i].n > sorted[j].n
			}
			return sorted[i].idx < sorted[j].idx // ties in basis-state order, not map order
		})
		for _, e := range sorted {
			fmt.Printf("  |%0*b>  %d\n", c.NQubits, e.idx, e.n)
		}
	}
	if *showTrace {
		fmt.Println("trace (gate index, op nodes, state nodes):")
		for _, tp := range res.Trace {
			fmt.Printf("  %6d %8d %8d\n", tp.GateIndex, tp.OpSize, tp.StateSize)
		}
		fmt.Println("final per-level profile:", dd.LevelProfile(res.State.NodesByLevel()))
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := dd.DotV(f, res.State, name(c)); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("state DD written to %s\n", *dotOut)
	}
	octl.finish()
}

// parseAnyText auto-detects OpenQASM vs the native format.
func parseAnyText(text string) (*circuit.Circuit, error) {
	if isQASM(text) {
		prog, err := qasm.ParseString(text)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	}
	return circuit.ParseString(text)
}

func isQASM(text string) bool {
	return strings.Contains(text, "OPENQASM") || strings.Contains(text, "qreg")
}

func hasDynamicOps(text string) bool {
	for _, kw := range []string{"measure", "reset", "if"} {
		for _, line := range strings.Split(text, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, kw) {
				return true
			}
		}
	}
	return false
}

// reportFailure prints a partial-progress report for an aborted run and
// exits with a status distinguishing the failure class (3 deadline,
// 4 budget, 5 canceled, 6 recovered panic / injected fault,
// 7 unrepairable state corruption, 8 parked under memory pressure).
func reportFailure(res *core.Result, c *circuit.Circuit, err error, ckptPath string) {
	var re *core.RunError
	if !errors.As(err, &re) {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ddsim: %v\n", err)
	if res != nil {
		fmt.Fprintf(os.Stderr, "  gates applied:  %d of %d\n", res.GatesApplied, c.GateCount())
		fmt.Fprintf(os.Stderr, "  live nodes:     %d\n",
			res.Engine.VNodeCount()+res.Engine.MNodeCount())
		fmt.Fprintf(os.Stderr, "  peak op matrix: %d nodes\n", res.Stats.PeakMatrixSize)
		if res.Fallbacks > 0 {
			fmt.Fprintf(os.Stderr, "  fallbacks:      %d\n", res.Fallbacks)
		}
		fmt.Fprintf(os.Stderr, "  runtime:        %v\n", res.Duration)
	}
	if ckptPath != "" {
		fmt.Fprintf(os.Stderr, "  checkpoint:     %s (resume with -resume %s)\n", ckptPath, ckptPath)
	}
	switch re.Kind {
	case core.FailureDeadline:
		os.Exit(3)
	case core.FailureBudget:
		os.Exit(4)
	case core.FailureCanceled:
		os.Exit(5)
	case core.FailureCorruption:
		os.Exit(7)
	case core.FailurePressure:
		os.Exit(8)
	default:
		os.Exit(6)
	}
}

// runFsck verifies a checkpoint file and exits: 0 when sound, 7 when
// corrupt (bad magic, CRC mismatch, truncation, failed state audit),
// 1 for other errors (e.g. the file does not exist).
func runFsck(path string) {
	rep, err := core.VerifyCheckpoint(path)
	if rep != nil {
		fmt.Printf("checkpoint:     %s (format v%d)\n", path, rep.Version)
		fmt.Printf("circuit:        %s (%d qubits, resumes at gate %d)\n",
			rep.CircuitName, rep.NQubits, rep.NextGate)
		if rep.Strategy != "" {
			fmt.Printf("strategy:       %s\n", rep.Strategy)
		}
		fmt.Printf("seed:           %d (%d fallbacks, %d repairs)\n",
			rep.Seed, rep.Fallbacks, rep.Repairs)
		fmt.Printf("state:          %d DD nodes, norm %.9f\n", rep.StateNodes, rep.Norm)
		if rep.Order != nil {
			fmt.Printf("order:          %v\n", rep.Order)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddsim: fsck:", err)
		if errors.Is(err, core.ErrCheckpointCorrupt) {
			os.Exit(7)
		}
		os.Exit(1)
	}
	fmt.Println("fsck:           ok")
}

// runDynamic executes a dynamic OpenQASM program shot by shot —
// serially, or fanned out across a worker pool when parallel > 1
// (each shot is a full program execution, so the fan-out is what makes
// large -shots counts tractable).
func runDynamic(text string, opt core.Options, shots, parallel int, seed int64) {
	prog, err := qasm.ParseDynamicString(text)
	if err != nil {
		fatal(err)
	}
	st := opt.Strategy
	if st == nil {
		st = core.Sequential{}
	}
	if shots <= 0 {
		shots = 1
	}
	var counts map[uint64]int
	if parallel > 1 {
		counts, err = runDynamicParallel(prog, opt, shots, parallel, seed)
		if err != nil {
			fatal(err)
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		counts = map[uint64]int{}
		for i := 0; i < shots; i++ {
			res, err := prog.Run(opt, rng)
			if err != nil {
				fatal(err)
			}
			counts[res.Classical]++
		}
	}
	fmt.Printf("dynamic program: %d qubits, %d classical bits, %d ops\n",
		prog.NQubits, prog.NClbits, len(prog.Ops))
	if parallel > 1 {
		fmt.Printf("parallel:        %d shots across %d workers (seed %d + job index)\n",
			shots, parallel, seed)
	}
	fmt.Printf("strategy:        %s, %d shot(s)\n", st.Name(), shots)
	type kv struct {
		bits uint64
		n    int
	}
	var sorted []kv
	for b, n := range counts {
		sorted = append(sorted, kv{b, n})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].n > sorted[j].n })
	fmt.Println("classical outcomes:")
	for _, e := range sorted {
		fmt.Printf("  %0*b  %d\n", prog.NClbits, e.bits, e.n)
	}
}

func name(c *circuit.Circuit) string {
	if c.Name != "" {
		return c.Name
	}
	return "(unnamed)"
}

// pickStrategy delegates to the shared strategy table in core, so the
// flag's accepted set, its usage string, and the ddserve job decoder
// all come from one place and cannot drift.
func pickStrategy(s string, k, smax int, ratio float64, window int, growth float64) (core.Strategy, error) {
	st, err := core.NewStrategy(s, core.StrategyKnobs{
		K: k, SMax: smax, Ratio: ratio, Window: window, Growth: growth,
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

func printTopAmplitudes(res *core.Result, n, top int) {
	amps := dd.VectorInOrder(res.State, res.Order)
	type entry struct {
		idx uint64
		p   float64
		a   complex128
	}
	var es []entry
	for i, a := range amps {
		if p := cnum.Abs2(a); p > 1e-12 {
			es = append(es, entry{uint64(i), p, a})
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].p > es[j].p })
	if len(es) > top {
		es = es[:top]
	}
	fmt.Printf("top %d amplitudes:\n", len(es))
	for _, e := range es {
		fmt.Printf("  |%0*b>  p=%.6f  amp=%.6f%+.6fi\n", n, e.idx, e.p, real(e.a), imag(e.a))
	}
}

// printEngineStats reports the engine's per-cache hit rates, node and
// GC accounting, and memory-layer occupancy.
func printEngineStats(e *dd.Engine) {
	s := e.Stats()
	m := e.MemStats()
	fmt.Println("engine statistics:")
	cache := func(name string, c dd.CacheStats) {
		// A never-consulted cache has no hit rate; "0.0%" would read as
		// a pathologically cold cache rather than an unused one.
		rate := "-"
		if c.Lookups > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*c.HitRate())
		}
		fmt.Printf("  %-7s cache: %10d lookups  %10d hits  (%s)\n",
			name, c.Lookups, c.Hits, rate)
	}
	cache("add-v", s.AddV)
	cache("add-m", s.AddM)
	cache("mul-mv", s.MulMV)
	cache("mul-mm", s.MulMM)
	fmt.Printf("  mul recursions:  %d (add recursions %d)\n", s.MulRecursions, s.AddRecursions)
	skips := s.IdentitySkipsMV + s.IdentitySkipsMM
	if e.IdentitySkipEnabled() {
		fmt.Printf("  identity skips:  %d (mat-vec %d, mat-mat %d; %d recursion levels avoided)\n",
			skips, s.IdentitySkipsMV, s.IdentitySkipsMM, s.IdentitySkipLevels)
	} else {
		fmt.Printf("  identity skips:  disabled (-no-identity-skip)\n")
	}
	fmt.Printf("  nodes created:   %d (recycled %d)\n", s.NodesCreated, s.NodesRecycled)
	fmt.Printf("  collections:     %d (total pause %v, max %v)\n", s.GCs, s.GCPause, s.GCMaxPause)
	fmt.Printf("  unique tables:   v %d/%d slots (%d tombstones), m %d/%d slots (%d tombstones)\n",
		m.VLive, m.VCapacity, m.VTombstones, m.MLive, m.MCapacity, m.MTombstones)
	fmt.Printf("  arenas:          v %d chunks (%d free), m %d chunks (%d free)\n",
		m.VChunks, m.VFree, m.MChunks, m.MFree)
	fmt.Printf("  weight table:    %d representatives\n", e.WeightTableSize())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddsim:", err)
	os.Exit(1)
}
