package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/obs"
)

// obsCtl bundles the observability outputs a run asked for on the
// command line: the structured event stream (-trace-out, -progress),
// the metrics registry (-metrics-out), and CPU/heap profiles (-pprof).
// finish must run on every exit path that follows a simulation —
// including aborted runs, whose partial telemetry is the interesting
// part — before the process exits.
type obsCtl struct {
	sink     obs.Sink
	registry *obs.Registry

	jsonl      *obs.JSONL
	jsonlFile  *os.File
	metricsOut string
	pprofDir   string
	cpuFile    *os.File
	finished   bool
}

// setupObservability opens the requested outputs and starts the CPU
// profile. It returns nil when no observability flag was given, so the
// simulation path stays exactly as before.
func setupObservability(traceOut, metricsOut string, progress bool, pprofDir string) (*obsCtl, error) {
	if traceOut == "" && metricsOut == "" && !progress && pprofDir == "" {
		return nil, nil
	}
	ctl := &obsCtl{metricsOut: metricsOut, pprofDir: pprofDir}
	var sinks obs.MultiSink
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, fmt.Errorf("ddsim: -trace-out: %w", err)
		}
		ctl.jsonlFile = f
		ctl.jsonl = obs.NewJSONL(f)
		sinks = append(sinks, ctl.jsonl)
	}
	if progress {
		sinks = append(sinks, obs.NewProgress(os.Stderr, 500*time.Millisecond))
	}
	if len(sinks) > 0 {
		ctl.sink = sinks
	}
	if metricsOut != "" {
		ctl.registry = obs.NewRegistry()
	}
	if pprofDir != "" {
		if err := os.MkdirAll(pprofDir, 0o755); err != nil {
			return nil, fmt.Errorf("ddsim: -pprof: %w", err)
		}
		f, err := os.Create(filepath.Join(pprofDir, "cpu.pprof"))
		if err != nil {
			return nil, fmt.Errorf("ddsim: -pprof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("ddsim: -pprof: %w", err)
		}
		ctl.cpuFile = f
	}
	return ctl, nil
}

// finish flushes the event stream, writes the metrics snapshot and
// stops/writes the profiles. Errors are reported but do not change the
// exit status — the simulation outcome is the primary result.
func (c *obsCtl) finish() {
	if c == nil || c.finished {
		return
	}
	c.finished = true
	if c.jsonl != nil {
		if err := c.jsonl.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -trace-out:", err)
		}
		if err := c.jsonlFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -trace-out:", err)
		}
	}
	if c.metricsOut != "" {
		if err := writeMetricsFile(c.metricsOut, c.registry); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -metrics-out:", err)
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -pprof:", err)
		}
		runtime.GC() // settle the heap so the profile reflects live data
		hf, err := os.Create(filepath.Join(c.pprofDir, "heap.pprof"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -pprof:", err)
			return
		}
		if err := pprof.WriteHeapProfile(hf); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -pprof:", err)
		}
		if err := hf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ddsim: -pprof:", err)
		}
	}
}

// writeMetricsFile writes the registry snapshot: Prometheus text
// exposition when the path ends in .prom, JSON otherwise.
func writeMetricsFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = reg.WritePrometheus(f)
	} else {
		err = reg.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
