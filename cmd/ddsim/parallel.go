package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/batch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dynamic"
	"repro/internal/obs"
)

// runParallelShots fans -shots K across a worker pool: W =
// min(parallel, K) independent jobs, each simulating the circuit on
// its own freshly created engine and sampling its share of the shots
// with a deterministically derived seed (base seed + job index). The
// merged histogram is deterministic for a fixed (seed, parallel) pair;
// it differs from the serial -shots sequence because each job draws
// from its own rng stream.
//
// Returns the first job's simulation result (every job computes the
// same final state) for the standard report, and the merged counts.
func runParallelShots(c *circuit.Circuit, opt core.Options, shots, parallel int, seed int64, maxNodes int) (*core.Result, map[uint64]int, error) {
	shares := batch.SplitShots(shots, parallel)
	// The batch owns engine creation, the node-budget split, and the
	// serialisation of shared sinks; the per-job options must not carry
	// the single-run engine or budget.
	opt.Engine = nil
	opt.MaxNodes = 0
	events := opt.EventSink
	metrics := opt.Metrics
	opt.EventSink = nil
	opt.Metrics = nil
	jobs := make([]core.BatchJob, len(shares))
	for i := range jobs {
		jobs[i] = core.BatchJob{Circuit: c, Options: opt}
	}
	results, err := core.RunBatch(context.Background(), jobs, core.BatchOptions{
		Workers:  parallel,
		MaxNodes: maxNodes,
		Events:   events,
		Metrics:  metrics,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return r.Result, nil, r.Err
		}
	}
	counts := map[uint64]int{}
	for j, r := range results {
		rng := rand.New(rand.NewSource(seed + int64(j)))
		for s := 0; s < shares[j]; s++ {
			// Samples are DD-indexed; map through the job's variable
			// order back to circuit qubit order.
			counts[dd.IndexFromDD(r.Result.Order, r.Result.State.SampleAll(rng))]++
		}
	}
	return results[0].Result, counts, nil
}

// runDynamicParallel fans a dynamic program's shot loop across a
// worker pool: each job re-executes the program for its share of the
// shots with its own rng stream (seed + job index) and a fresh engine
// per execution, then the classical histograms are merged.
func runDynamicParallel(prog *dynamic.Program, opt core.Options, shots, parallel int, seed int64) (map[uint64]int, error) {
	shares := batch.SplitShots(shots, parallel)
	if opt.EventSink != nil {
		opt.EventSink = obs.NewSyncSink(opt.EventSink)
	}
	jobs := make([]batch.Job[map[uint64]int], len(shares))
	for j := range jobs {
		j := j
		jobs[j] = func(context.Context, int) (map[uint64]int, error) {
			rng := rand.New(rand.NewSource(seed + int64(j)))
			local := map[uint64]int{}
			for s := 0; s < shares[j]; s++ {
				res, err := prog.Run(opt, rng)
				if err != nil {
					return nil, fmt.Errorf("shot on worker job %d: %w", j, err)
				}
				local[res.Classical]++
			}
			return local, nil
		}
	}
	results, err := batch.Run(context.Background(), jobs,
		batch.Options{Workers: parallel, Metrics: opt.Metrics})
	if err != nil {
		return nil, err
	}
	counts := map[uint64]int{}
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		for bits, n := range r.Value {
			counts[bits] += n
		}
	}
	return counts, nil
}
