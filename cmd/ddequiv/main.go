// Command ddequiv decides whether two circuits implement the same
// unitary (up to global phase) by combining each circuit into one
// operation DD — the matrix-matrix machinery of the paper applied to
// equivalence checking.
//
// Usage:
//
//	ddequiv -a original.qasm -b optimised.qc
//
// Exit status: 0 when equivalent, 1 when not, 2 on usage/parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/cmplx"
	"os"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/qasm"
)

func main() {
	var (
		fileA = flag.String("a", "", "first circuit file (native or OpenQASM)")
		fileB = flag.String("b", "", "second circuit file (native or OpenQASM)")
	)
	flag.Parse()
	if *fileA == "" || *fileB == "" {
		fmt.Fprintln(os.Stderr, "ddequiv: both -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}
	a, err := load(*fileA)
	if err != nil {
		fatal(err)
	}
	b, err := load(*fileB)
	if err != nil {
		fatal(err)
	}
	res, err := core.Equivalent(nil, a, b)
	if err != nil {
		fatal(err)
	}
	if res.Equivalent {
		phase := cmplx.Phase(res.Phase)
		fmt.Printf("EQUIVALENT (global phase %.6f rad, overlap %.9f)\n", phase, res.HSOverlap)
		return
	}
	fmt.Printf("NOT EQUIVALENT (Hilbert-Schmidt overlap %.9f)\n", res.HSOverlap)
	os.Exit(1)
}

func load(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	text := string(src)
	if strings.Contains(text, "OPENQASM") || strings.Contains(text, "qreg") {
		prog, err := qasm.ParseString(text)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	}
	return circuit.ParseString(text)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddequiv:", err)
	os.Exit(2)
}
