// Command ddbench regenerates the paper's evaluation artefacts:
//
//	Fig. 8  — speed-up of strategy k-operations over k
//	Fig. 9  — speed-up of strategy max-size over s_max
//	Table I — grover benchmarks with strategy DD-repeating
//	Table II — shor benchmarks with strategy DD-construct
//	Fig. 5  — DD size traces along Eq. 1 vs. combined operations
//	adaptive — ratio sweep of the adaptive strategy (ablation, not in "all")
//	enginestats — per-cache hit rates and GC behaviour of the DD engine
//	identity — identity-aware kernels before/after (ablation, not in "all")
//	reorder — variable-order ablation: fixed vs static vs sifting (not in "all")
//
// Usage:
//
//	ddbench -experiment all                 # quick suite (~10 minutes)
//	ddbench -experiment table2 -full        # include the paper's moduli
//	ddbench -experiment fig8 -reps 3        # tighter timing
//	ddbench -experiment fig9 -csvdir out/   # also write raw CSV data
//	ddbench -experiment fig8 -metrics-out m.json -pprof prof/
//	ddbench -experiment fig8 -parallel 4    # sweep cells on a worker pool
//
// -parallel N runs the independent sweep cells (fig8/fig9/adaptive,
// baselines included) through a bounded worker pool, each cell on its
// own freshly created engine. Marks and node counts are identical to
// serial mode — only the timing columns shift with machine load, so use
// -parallel for mark/telemetry sweeps and serial mode for headline
// speed-up numbers.
//
// Sweeps additionally write per-cell run telemetry (<name>_metrics.csv)
// next to the raw data when -csvdir is set. -metrics-out aggregates the
// engine counters of every measured run into one snapshot (JSON, or
// Prometheus text when the path ends in .prom); -progress streams
// per-run progress lines to stderr; -pprof captures CPU and heap
// profiles of the whole suite.
//
// Absolute times depend on the machine; the shapes (where the speed-up
// peaks, who wins by how much, which runs time out) are what the paper
// reports and what this harness reproduces.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "all | fig5 | fig8 | fig9 | table1 | table2 | adaptive | enginestats | identity | planner | reorder")
		full       = flag.Bool("full", false, "larger instances (several minutes; table2 adds the paper's moduli)")
		reps       = flag.Int("reps", 1, "timing repetitions (fastest run reported)")
		budget     = flag.Duration("budget", 30*time.Second, "per-run timeout (paper: 2 CPU hours)")
		maxNodes   = flag.Int("max-nodes", 0, "per-run live-node budget; exceeding runs are reported as oom cells (0 = unlimited)")
		softBudget = flag.Int("soft-budget", 0, "arm the memory-pressure governor at this live-node target; rescued cells are marked degraded instead of oom (0 = off unless -degrade is set)")
		degrade    = flag.String("degrade", "", "governor mode: off, ladder, or approx (degraded cells then carry their fidelity bound)")
		parallel   = flag.Int("parallel", 1, "run sweep cells through a worker pool of this many workers (cells stay deterministic: same marks and node counts as serial mode, only timings shift)")
		csvDir     = flag.String("csvdir", "", "also write raw experiment data as CSV files into this directory")
		metricsOut = flag.String("metrics-out", "", "write an aggregated metrics snapshot over all measured runs (JSON, or Prometheus text if the path ends in .prom)")
		progress   = flag.Bool("progress", false, "stream per-run progress lines to stderr")
		pprofDir   = flag.String("pprof", "", "write cpu.pprof and heap.pprof profiles of the suite into this directory")
	)
	flag.Parse()

	cfg := bench.Config{
		Reps: *reps, Budget: *budget, MaxNodes: *maxNodes,
		SoftBudget: *softBudget, Degrade: *degrade,
		Full: *full, Parallel: *parallel,
	}
	if *metricsOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *progress {
		cfg.Events = obs.NewProgress(os.Stderr, 500*time.Millisecond)
	}
	if *pprofDir != "" {
		if err := os.MkdirAll(*pprofDir, 0o755); err != nil {
			fatal(err)
		}
		f, err := os.Create(filepath.Join(*pprofDir, "cpu.pprof"))
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ddbench: -pprof:", err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			hf, err := os.Create(filepath.Join(*pprofDir, "heap.pprof"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddbench: -pprof:", err)
				return
			}
			if err := pprof.WriteHeapProfile(hf); err != nil {
				fmt.Fprintln(os.Stderr, "ddbench: -pprof:", err)
			}
			if err := hf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ddbench: -pprof:", err)
			}
		}()
	}
	defer func() {
		if *metricsOut == "" {
			return
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*metricsOut, ".prom") {
			err = cfg.Metrics.WritePrometheus(f)
		} else {
			err = cfg.Metrics.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("[metrics snapshot written to %s]\n", *metricsOut)
	}()

	writeCSV := func(name, csv string) {
		if *csvDir == "" || csv == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("[raw data written to %s]\n", path)
	}

	// run prints an experiment's rendered text and writes its raw CSV
	// plus (for sweeps) the per-cell telemetry CSV when -csvdir is set.
	run := func(name string, f func(bench.Config) (text, csv, metricsCSV string, err error)) {
		start := time.Now()
		text, csv, metricsCSV, err := f(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(text)
		writeCSV(name, csv)
		writeCSV(name+"_metrics", metricsCSV)
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	sweepRunner := func(f func(bench.Config) (*bench.SweepResult, error)) func(bench.Config) (string, string, string, error) {
		return func(cfg bench.Config) (string, string, string, error) {
			r, err := f(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderSweep(r), r.CSV(), r.MetricsCSV(), nil
		}
	}

	all := *experiment == "all"
	ran := false
	if all || *experiment == "fig5" {
		run("fig5", func(cfg bench.Config) (string, string, string, error) {
			r, err := bench.Fig5(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderFig5(r), bench.TraceCSV(r), "", nil
		})
		ran = true
	}
	if all || *experiment == "fig8" {
		run("fig8", sweepRunner(bench.Fig8))
		ran = true
	}
	if all || *experiment == "fig9" {
		run("fig9", sweepRunner(bench.Fig9))
		ran = true
	}
	if all || *experiment == "table1" {
		run("table1", func(cfg bench.Config) (string, string, string, error) {
			rows, err := bench.Table1(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderTable1(rows), bench.Table1CSV(rows), "", nil
		})
		ran = true
	}
	if all || *experiment == "table2" {
		run("table2", func(cfg bench.Config) (string, string, string, error) {
			rows, err := bench.Table2(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderTable2(rows, cfg.Budget.Seconds()),
				bench.Table2CSV(rows, cfg.Budget.Seconds()), "", nil
		})
		ran = true
	}
	if all || *experiment == "enginestats" {
		run("enginestats", func(cfg bench.Config) (string, string, string, error) {
			rows, err := bench.EngineStats(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderEngineStats(rows), bench.EngineStatsCSV(rows), "", nil
		})
		ran = true
	}
	if *experiment == "adaptive" { // ablation beyond the paper; not part of "all"
		run("adaptive", sweepRunner(bench.AdaptiveSweep))
		ran = true
	}
	if *experiment == "identity" { // kernel ablation; not part of "all"
		run("identity", func(cfg bench.Config) (string, string, string, error) {
			rows, err := bench.IdentitySweep(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderIdentity(rows), bench.IdentityCSV(rows), "", nil
		})
		ran = true
	}
	if *experiment == "reorder" { // variable-order ablation; not part of "all"
		run("reorder", func(cfg bench.Config) (string, string, string, error) {
			rows, err := bench.ReorderSweep(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderReorder(rows), bench.ReorderCSV(rows), "", nil
		})
		ran = true
	}
	if *experiment == "planner" { // strategy-planner comparison; not part of "all"
		run("planner", func(cfg bench.Config) (string, string, string, error) {
			r, err := bench.PlannerSweep(cfg)
			if err != nil {
				return "", "", "", err
			}
			return bench.RenderPlanner(r), bench.PlannerCSV(r), "", nil
		})
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ddbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddbench:", err)
	os.Exit(1)
}
