// Command ddgen generates benchmark circuits in the native textual
// format or OpenQASM 2.0.
//
// Usage:
//
//	ddgen -algo grover -n 8 -marked 42
//	ddgen -algo supremacy -rows 4 -cols 4 -depth 16 -seed 7 -format qasm
//	ddgen -algo qft -n 10
//	ddgen -algo bv -n 16 -secret 0xbeef
//	ddgen -algo dj -n 10 -mask 0x2a
//	ddgen -algo qpe -n 8 -theta 0.3125
//	ddgen -algo shor-cu -modulus 15 -base 7      # one controlled U_a block
//
// The circuit is written to stdout (or -out FILE).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/grover"
	"repro/internal/qasm"
	"repro/internal/qft"
	"repro/internal/shor"
	"repro/internal/supremacy"
)

func main() {
	var (
		algo    = flag.String("algo", "", "grover | supremacy | qft | bv | dj | qpe | shor-cu")
		n       = flag.Int("n", 8, "register size (grover/qft/bv/dj/qpe)")
		marked  = flag.String("marked", "0", "grover: marked element (decimal or 0x hex)")
		iters   = flag.Int("iterations", 0, "grover: iteration count (0 = optimal)")
		rows    = flag.Int("rows", 4, "supremacy: grid rows")
		cols    = flag.Int("cols", 4, "supremacy: grid cols")
		depth   = flag.Int("depth", 12, "supremacy: CZ cycles")
		seed    = flag.Int64("seed", 1, "supremacy: generator seed")
		secret  = flag.String("secret", "0", "bv: secret mask (decimal or 0x hex)")
		mask    = flag.String("mask", "1", "dj: balanced parity mask (0 = constant oracle)")
		theta   = flag.Float64("theta", 0.25, "qpe: eigenphase θ of P(2πθ)")
		modulus = flag.Uint64("modulus", 15, "shor-cu: modulus N")
		base    = flag.Uint64("base", 7, "shor-cu: multiplier a")
		format  = flag.String("format", "qc", "qc (native) | qasm")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	c, err := build(*algo, buildParams{
		n: *n, marked: parseUint(*marked), iters: *iters,
		rows: *rows, cols: *cols, depth: *depth, seed: *seed,
		secret: parseUint(*secret), mask: parseUint(*mask), theta: *theta,
		modulus: *modulus, base: *base,
	})
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "qc":
		err = c.Write(w)
	case "qasm":
		err = qasm.Export(w, c)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

type buildParams struct {
	n             int
	marked        uint64
	iters         int
	rows, cols    int
	depth         int
	seed          int64
	secret, mask  uint64
	theta         float64
	modulus, base uint64
}

func build(algo string, p buildParams) (*circuit.Circuit, error) {
	switch algo {
	case "grover":
		return grover.Circuit(p.n, p.marked, p.iters), nil
	case "supremacy":
		return supremacy.Circuit(p.rows, p.cols, p.depth, p.seed), nil
	case "qft":
		return qft.Circuit(p.n, true), nil
	case "bv":
		return algos.BernsteinVazirani(p.n, p.secret), nil
	case "dj":
		if p.mask == 0 {
			return algos.DeutschJozsa(p.n, false, 0, false), nil
		}
		return algos.DeutschJozsa(p.n, true, p.mask, false), nil
	case "qpe":
		return algos.PhaseEstimation(p.n, p.theta), nil
	case "shor-cu":
		c, _, err := shor.ControlledUaCircuit(p.modulus, p.base)
		return c, err
	case "":
		return nil, fmt.Errorf("ddgen: -algo is required")
	}
	return nil, fmt.Errorf("ddgen: unknown algorithm %q", algo)
}

func parseUint(s string) uint64 {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		fatal(fmt.Errorf("ddgen: bad number %q: %w", s, err))
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
