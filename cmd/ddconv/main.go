// Command ddconv converts circuits between the supported formats:
// the native textual format (qc), OpenQASM 2.0 (qasm), and RevLib
// reversible circuits (real). Input format is auto-detected; output
// format is selected with -to. Optionally runs the peephole optimiser
// first.
//
// Usage:
//
//	ddconv -in adder.real -to qasm -out adder.qasm
//	ddconv -in circuit.qasm -to qc -optimize
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/circuit"
	"repro/internal/opt"
	"repro/internal/qasm"
	"repro/internal/realfmt"
)

func main() {
	var (
		in       = flag.String("in", "", "input circuit file ('-' for stdin)")
		out      = flag.String("out", "", "output file (default stdout)")
		to       = flag.String("to", "qc", "output format: qc | qasm | real")
		optimize = flag.Bool("optimize", false, "run the peephole optimiser before writing")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ddconv: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	src, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	c, format, err := detect(string(src))
	if err != nil {
		fatal(err)
	}

	if *optimize {
		optimised, stats := opt.Optimize(c)
		fmt.Fprintf(os.Stderr, "ddconv: optimiser removed %d of %d gates (%d pairs cancelled, %d rotations merged)\n",
			stats.Removed(), c.GateCount(), stats.CancelledPairs, stats.MergedRotations)
		c = optimised
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *to {
	case "qc":
		err = c.Write(w)
	case "qasm":
		err = qasm.Export(w, c)
	case "real":
		err = realfmt.Export(w, c)
	default:
		err = fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ddconv: %s (%d qubits, %d gates) → %s\n", format, c.NQubits, c.GateCount(), *to)
}

// detect parses the input, auto-detecting its format.
func detect(text string) (*circuit.Circuit, string, error) {
	switch {
	case strings.Contains(text, "OPENQASM") || strings.Contains(text, "qreg"):
		prog, err := qasm.ParseString(text)
		if err != nil {
			return nil, "", err
		}
		return prog.Circuit, "qasm", nil
	case strings.Contains(text, ".numvars"):
		prog, err := realfmt.ParseString(text)
		if err != nil {
			return nil, "", err
		}
		return prog.Circuit, "real", nil
	default:
		c, err := circuit.ParseString(text)
		if err != nil {
			return nil, "", err
		}
		return c, "qc", nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddconv:", err)
	os.Exit(1)
}
