// Command ddserve runs the simulation-as-a-service daemon: an HTTP
// server that accepts circuit jobs (OpenQASM 2.0 or the native
// format), executes them on a bounded priority worker pool, and
// journals every job durably so a crashed server restarts and resumes
// in-flight work from its last checkpoint.
//
// Usage:
//
//	ddserve -dir /var/lib/ddserve                    # journal location
//	ddserve -addr :8344 -workers 8 -queue 256
//	ddserve -max-nodes 4000000 -checkpoint-every 256 -retries 4
//
// Submit and poll with curl:
//
//	curl -d '{"qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];","shots":100}' \
//	     localhost:8344/v1/jobs
//	curl localhost:8344/v1/jobs/j00000001/result
//
// Shutdown: SIGTERM (or SIGINT) drains gracefully — admission stops
// (503 + Retry-After), running jobs are checkpointed and parked, and
// the process exits once the pool is quiet or -drain-timeout expires.
// Parked and queued jobs resume on the next start against the same
// -dir. kill -9 loses nothing either: the journal re-admits every
// non-terminal job from its last durable checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/retry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		dir        = flag.String("dir", "", "journal directory (required); jobs survive restarts here")
		workers    = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 256, "admission queue bound; beyond it submissions get 429")
		maxNodes   = flag.Int("max-nodes", 0, "server-wide live-node budget, split across workers (0 = unlimited)")
		ckptEvery  = flag.Int("checkpoint-every", 256, "periodic checkpoint interval in applied gates (-1 disables)")
		retries    = flag.Int("retries", 4, "max attempts per job (first try included)")
		retryBase  = flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry")
		retryMax   = flag.Duration("retry-max", 30*time.Second, "backoff cap")
		perClient  = flag.Int("per-client", 0, "active-job quota per client (0 = queue/4, -1 disables)")
		breakAfter = flag.Int("break-after", 5, "consecutive terminal failures that open a client's breaker (-1 disables)")
		breakCool  = flag.Duration("break-cooldown", 30*time.Second, "circuit-breaker cooldown")
		drainTmo   = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs to checkpoint and park")
		pressWin   = flag.Duration("pressure-window", 2*time.Second, "sustained governor pressure before /readyz flips and submissions shed (-1ns disables)")
		maxBody    = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		maxQubits  = flag.Int("max-qubits", 30, "widest accepted circuit")
		maxGates   = flag.Int("max-gates", 1<<20, "longest accepted circuit (gates after expansion)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ddserve: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "ddserve: ", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		Dir:              *dir,
		Workers:          *workers,
		Queue:            *queue,
		MaxNodes:         *maxNodes,
		CheckpointEvery:  *ckptEvery,
		Retry:            retry.Policy{Base: *retryBase, Max: *retryMax, Attempts: *retries},
		PerClientActive:  *perClient,
		BreakerThreshold: *breakAfter,
		BreakerCooldown:  *breakCool,
		PressureWindow:   *pressWin,
		Caps: serve.Caps{
			MaxBodyBytes: *maxBody,
			MaxQubits:    *maxQubits,
			MaxGates:     *maxGates,
		},
		Registry: obs.NewRegistry(),
		Logf: func(format string, args ...any) {
			logger.Printf(format, args...)
		},
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: serve.Handler(srv)}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("listening on %s, journal in %s", *addr, *dir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case got := <-sig:
		logger.Printf("%s: draining (timeout %s)", got, *drainTmo)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTmo)
	defer cancel()
	// Stop admitting first (readyz flips, running jobs checkpoint and
	// park), then close the listener.
	drainErr := srv.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("drain: %v (parked what it could)", drainErr)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
