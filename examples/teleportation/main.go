// Quantum teleportation as a dynamic circuit: mid-circuit
// measurements and classically-controlled corrections, executed by the
// DD simulator (footnote 7 of the paper relies on the same machinery
// for semiclassical phase estimation). Run with:
//
//	go run repro/examples/teleportation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"repro"
)

// The same protocol, written as OpenQASM 2.0 with `if` statements.
const teleportQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg m0[1];
creg m1[1];
u3(1.047197551196598,0.5,1.2) q[0];  // payload: u3(pi/3, 0.5, 1.2)|0>
h q[1];                              // Bell pair on q1,q2
cx q[1],q[2];
cx q[0],q[1];                        // Bell measurement of q0,q1
h q[0];
measure q[0] -> m0[0];
measure q[1] -> m1[0];
if (m1 == 1) x q[2];                 // corrections
if (m0 == 1) z q[2];
`

func main() {
	prog, err := repro.ImportDynamicQASM(strings.NewReader(teleportQASM))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teleportation program: %d qubits, %d classical bits, %d ops\n",
		prog.NQubits, prog.NClbits, len(prog.Ops))

	// The payload u3(π/3, 0.5, 1.2)|0> has P(1) = sin²(π/6) = 0.25.
	want := math.Sin(math.Pi/6) * math.Sin(math.Pi/6)
	rng := rand.New(rand.NewSource(42))

	outcomes := map[uint64]int{}
	const shots = 2000
	sumP1 := 0.0
	for i := 0; i < shots; i++ {
		res, err := prog.Run(repro.Options{Strategy: repro.KOperations(2)}, rng)
		if err != nil {
			log.Fatal(err)
		}
		outcomes[res.Classical]++
		sumP1 += res.State.Prob(2, 1)
	}

	fmt.Println("Bell-measurement outcomes (all four equally likely):")
	for bits, n := range outcomes {
		fmt.Printf("  m1m0 = %02b: %4d\n", bits, n)
	}
	fmt.Printf("P(q2 = 1) after correction, averaged over shots: %.4f (exact: %.4f)\n",
		sumP1/shots, want)
	if math.Abs(sumP1/shots-want) > 1e-9 {
		fmt.Println("→ teleportation FAILED")
		return
	}
	fmt.Println("→ the payload state arrived intact on qubit 2 in every shot")
}
