// Shor factoring: factor integers through quantum order finding, first
// the paper's DD-construct way (oracle built directly as a permutation
// DD, n+1 qubits), then — for the smallest instance — through the full
// gate-level Beauregard circuit (2n+3 qubits) for comparison. Run with:
//
//	go run repro/examples/shor_factoring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	fmt.Println("DD-construct (n+1 qubits, oracle as permutation DD):")
	for _, in := range []struct{ n, a uint64 }{{15, 7}, {21, 2}, {33, 5}, {1007, 602}} {
		res := factorRetrying(in.n, in.a, rng, func(n, a uint64) (*repro.FactoringResult, error) {
			return repro.Factor(n, a, rng)
		})
		report(res)
	}

	fmt.Println("\ngate-level Beauregard circuit (2n+3 qubits), max-size strategy:")
	res := factorRetrying(15, 7, rng, func(n, a uint64) (*repro.FactoringResult, error) {
		return repro.FactorGateLevel(n, a, repro.MaxSize(128), rng)
	})
	report(res)
}

func factorRetrying(n, a uint64, rng *rand.Rand,
	run func(n, a uint64) (*repro.FactoringResult, error)) *repro.FactoringResult {
	var last *repro.FactoringResult
	for attempt := 0; attempt < 10; attempt++ {
		res, err := run(n, a)
		if err != nil {
			log.Fatal(err)
		}
		last = res
		if res.Factored {
			return res
		}
	}
	return last
}

func report(res *repro.FactoringResult) {
	if res.Factored {
		fmt.Printf("  N=%-6d a=%-5d → order %-4d → %d = %d × %d   (%d qubits, %v)\n",
			res.N, res.A, res.Order, res.N, res.Factors[0], res.Factors[1],
			res.Qubits, res.Duration.Round(res.Duration/100))
	} else {
		fmt.Printf("  N=%-6d a=%-5d → no factors after retries (last phase %d)\n",
			res.N, res.A, res.Phase)
	}
}
