// Circuit toolchain: import an OpenQASM 2.0 program, verify a hand
// optimisation with the DD-based equivalence checker, compute Pauli
// observables, and score sampled bitstrings with linear cross-entropy
// benchmarking. Run with:
//
//	go run repro/examples/circuit_tools
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
	"repro/internal/dd"
)

const original = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
t q[3];
tdg q[3];      // cancels the T — an "optimiser" should remove both
cx q[2],q[3];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
`

func main() {
	c, err := repro.ImportQASM(strings.NewReader(original))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d-qubit OpenQASM circuit with %d gates\n", c.NQubits, c.GateCount())

	// The circuit above is the identity in disguise: H/CX ladder, a
	// cancelling T·T†, and the mirrored ladder. Verify with the
	// DD-based checker (full-circuit matrix-matrix combination).
	identity := repro.NewCircuit(4)
	same, err := repro.Equivalent(c, identity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent to the identity:", same)

	// A genuinely different "optimisation" must be rejected.
	broken, err := repro.ImportQASM(strings.NewReader(
		"OPENQASM 2.0;\nqreg q[4];\nh q[0];\n"))
	if err != nil {
		log.Fatal(err)
	}
	same, err = repro.Equivalent(c, broken)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalent to a lone Hadamard:", same)

	// Observables on a GHZ state.
	ghz := repro.NewCircuit(4)
	ghz.H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	res, err := repro.Simulate(ghz, repro.KOperations(4))
	if err != nil {
		log.Fatal(err)
	}
	for _, obs := range []string{"ZZZZ", "XXXX", "ZIIZ", "ZIII"} {
		p, err := dd.ParsePauliString(obs, 4)
		if err != nil {
			log.Fatal(err)
		}
		val, err := res.Engine.Expectation(res.State, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GHZ <%s> = %+.3f\n", obs, val)
	}

	// Linear XEB of a supremacy-style circuit sampled from its own
	// output distribution (≈ Porter-Thomas, so the score approaches 1).
	sup := repro.SupremacyCircuit(3, 4, 14, 99)
	supRes, err := repro.Simulate(sup, repro.MaxSize(256))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var samples []uint64
	for i := 0; i < 3000; i++ {
		samples = append(samples, supRes.State.SampleAll(rng))
	}
	fmt.Printf("linear XEB of ideal sampling on %s: %.3f (1.0 = perfect, 0 = noise)\n",
		sup.Name, dd.LinearXEB(supRes.State, samples))

	// Round-trip back to OpenQASM.
	var sb strings.Builder
	if err := repro.ExportQASM(&sb, ghz); err != nil {
		log.Fatal(err)
	}
	fmt.Println("GHZ circuit re-exported as OpenQASM:")
	fmt.Print(sb.String())
}
