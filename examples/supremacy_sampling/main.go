// Supremacy sampling: simulate a Boixo-et-al.-style random grid circuit
// — the workload where intermediate state DDs grow large and combining
// operations pays off the most (Example 3 of the paper) — and sample
// output bitstrings. Run with:
//
//	go run repro/examples/supremacy_sampling
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const rows, cols, depth, seed = 4, 4, 14, 2026
	c := repro.SupremacyCircuit(rows, cols, depth, seed)
	fmt.Printf("%s: %d qubits, %d gates, depth %d\n", c.Name, c.NQubits, c.GateCount(), c.Depth())

	type outcome struct {
		name string
		st   repro.Strategy
	}
	var baseline float64
	for _, o := range []outcome{
		{"sequential (Eq. 1)", repro.Sequential()},
		{"k-operations, k=4", repro.KOperations(4)},
		{"max-size, s=256", repro.MaxSize(256)},
	} {
		res, err := repro.Simulate(c, o.st)
		if err != nil {
			log.Fatal(err)
		}
		secs := res.Duration.Seconds()
		if baseline == 0 {
			baseline = secs
		}
		fmt.Printf("  %-22s %8.3fs  speed-up %.2fx  (mat-vec %d, mat-mat %d, peak op DD %d)\n",
			o.name, secs, baseline/secs, res.MatVecSteps, res.MatMatSteps,
			res.Stats.PeakMatrixSize)
	}

	res, err := repro.Simulate(c, repro.MaxSize(256))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state DD: %d nodes (dense vector would need %d amplitudes)\n",
		res.Engine.SizeV(res.State), 1<<uint(c.NQubits))

	rng := rand.New(rand.NewSource(9))
	fmt.Println("eight sampled bitstrings:")
	for i := 0; i < 8; i++ {
		fmt.Printf("  %016b\n", res.State.SampleAll(rng))
	}
}
