// Grover search: find a marked database entry among 2^16, comparing
// the state-of-the-art sequential simulation against the paper's
// DD-repeating strategy (the Grover iteration is combined into one
// matrix once and re-used for every further iteration). Run with:
//
//	go run repro/examples/grover_search
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
)

func main() {
	const n = 16
	const marked = 0xBEEF & (1<<n - 1)

	iters := repro.GroverIterations(n)
	c := repro.GroverCircuit(n, marked, 0)
	fmt.Printf("searching 2^%d = %d entries for %#x (%d Grover iterations, %d gates)\n",
		n, 1<<n, marked, iters, c.GateCount())

	seq, err := repro.Simulate(c, repro.Sequential())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential (t_sota):     %8v  mat-vec=%d\n", seq.Duration, seq.MatVecSteps)

	rep, err := repro.SimulateOpts(c, core.Options{Strategy: core.Sequential{}, UseBlocks: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DD-repeating:            %8v  mat-vec=%d mat-mat=%d  (%.2fx speed-up)\n",
		rep.Duration, rep.MatVecSteps, rep.MatMatSteps,
		seq.Duration.Seconds()/rep.Duration.Seconds())

	p := rep.State.Prob(0, int(marked&1)) // cheap sanity peek
	_ = p
	probs := rep.State.Probabilities()
	fmt.Printf("P(marked) = %.4f\n", probs[marked])

	rng := rand.New(rand.NewSource(1))
	hits := 0
	const shots = 20
	for i := 0; i < shots; i++ {
		if rep.State.SampleAll(rng) == marked {
			hits++
		}
	}
	fmt.Printf("measured the marked element in %d/%d shots\n", hits, shots)
}
