// Quickstart: build a small circuit, simulate it with the paper's
// operation-combination strategies, and compare the multiplication
// counts. Run with:
//
//	go run repro/examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A 10-qubit GHZ-style circuit with some extra structure.
	c := repro.NewCircuit(10)
	c.H(0)
	for q := 1; q < 10; q++ {
		c.CX(q-1, q)
	}
	for q := 0; q < 10; q++ {
		c.T(q)
	}
	for q := 9; q > 0; q-- {
		c.CX(q-1, q)
	}

	fmt.Println("circuit:", c.GateCount(), "gates on", c.NQubits, "qubits")

	for _, strategy := range []repro.Strategy{
		repro.Sequential(),   // Eq. 1: one matrix-vector product per gate
		repro.KOperations(4), // combine runs of 4 gates first
		repro.MaxSize(64),    // combine until the operation DD exceeds 64 nodes
	} {
		res, err := repro.Simulate(c, strategy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s mat-vec=%3d mat-mat=%3d state-DD=%d nodes, %v\n",
			strategy.Name(), res.MatVecSteps, res.MatMatSteps, res.Engine.SizeV(res.State), res.Duration)
	}

	// All strategies produce the same state; sample from it.
	res, err := repro.Simulate(c, repro.MaxSize(64))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	fmt.Println("five samples from the final state:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  |%010b>\n", res.State.SampleAll(rng))
	}
	fmt.Printf("P(qubit 9 = 1) = %.3f\n", res.State.Prob(9, 1))
}
