package repro

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeBellState(t *testing.T) {
	c := NewCircuit(2)
	c.H(0).CX(0, 1)
	res, err := Simulate(c, nil) // nil → sequential
	if err != nil {
		t.Fatal(err)
	}
	w := 1 / math.Sqrt2
	if got := res.State.Amplitude(0); math.Abs(real(got)-w) > 1e-9 {
		t.Fatalf("amplitude(00) = %v", got)
	}
	if got := res.State.Amplitude(3); math.Abs(real(got)-w) > 1e-9 {
		t.Fatalf("amplitude(11) = %v", got)
	}
}

func TestFacadeStrategiesAgree(t *testing.T) {
	c := SupremacyCircuit(2, 3, 8, 11)
	ref, err := Simulate(c, Sequential())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Strategy{KOperations(3), MaxSize(32)} {
		res, err := Simulate(c, st)
		if err != nil {
			t.Fatal(err)
		}
		if f := res.Engine.Fidelity(res.State, ref.State); f < 1-1e-9 {
			// States live in different engines; compare via vectors.
			a := res.State.ToVector()
			b := ref.State.ToVector()
			var ip complex128
			for i := range a {
				ip += complex(real(b[i]), -imag(b[i])) * a[i]
			}
			if fi := real(ip)*real(ip) + imag(ip)*imag(ip); fi < 1-1e-9 {
				t.Fatalf("%s: fidelity %v", st.Name(), fi)
			}
		}
	}
}

func TestFacadeParse(t *testing.T) {
	c, err := ParseCircuit(strings.NewReader("qubits 3\nh 0\nccx 0 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 3 || c.GateCount() != 2 {
		t.Fatalf("parsed %d qubits, %d gates", c.NQubits, c.GateCount())
	}
	if _, err := ParseCircuit(strings.NewReader("nonsense")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFacadeGrover(t *testing.T) {
	c := GroverCircuit(6, 33, 0)
	res, err := SimulateOpts(c, Options{UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.State.Probabilities()[33]; p < 0.9 {
		t.Fatalf("P(marked) = %v", p)
	}
	if GroverIterations(6) != 6 {
		t.Fatalf("GroverIterations(6) = %d", GroverIterations(6))
	}
}

func TestFacadeFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var res *FactoringResult
	var err error
	for i := 0; i < 8 && (res == nil || !res.Factored); i++ {
		res, err = Factor(15, 7, rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !res.Factored || res.Factors[0]*res.Factors[1] != 15 {
		t.Fatalf("Factor(15,7) = %+v", res)
	}
}

func TestFacadeQFT(t *testing.T) {
	c := QFTCircuit(4)
	res, err := Simulate(c, MaxSize(64))
	if err != nil {
		t.Fatal(err)
	}
	// QFT|0> is the uniform superposition.
	want := 1 / math.Sqrt(16)
	for i := uint64(0); i < 16; i++ {
		if got := res.State.Amplitude(i); math.Abs(real(got)-want) > 1e-9 || math.Abs(imag(got)) > 1e-9 {
			t.Fatalf("QFT|0> amplitude(%d) = %v", i, got)
		}
	}
}

func TestFacadeEngineReuse(t *testing.T) {
	eng := NewEngine()
	c := NewCircuit(2)
	c.H(0)
	if _, err := SimulateOpts(c, Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	if eng.VNodeCount() == 0 {
		t.Fatal("engine not used")
	}
}

func TestFacadeAlgos(t *testing.T) {
	c := BernsteinVazirani(6, 0b101101)
	res, err := Simulate(c, KOperations(4))
	if err != nil {
		t.Fatal(err)
	}
	probs := res.State.Probabilities()
	var inputP float64
	for i, p := range probs {
		if uint64(i)&63 == 0b101101 {
			inputP += p
		}
	}
	if math.Abs(inputP-1) > 1e-9 {
		t.Fatalf("BV: P(secret) = %v", inputP)
	}

	dj := DeutschJozsa(4, 0)
	if dj.GateCount() == 0 {
		t.Fatal("empty DJ circuit")
	}
	qpe := PhaseEstimation(4, 0.25)
	if qpe.NQubits != 5 {
		t.Fatalf("QPE qubits %d", qpe.NQubits)
	}
}

func TestFacadeQASMAndEquivalence(t *testing.T) {
	c := NewCircuit(3)
	c.H(0).CX(0, 1).CCX(0, 1, 2).T(2)
	var sb strings.Builder
	if err := ExportQASM(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := ImportQASM(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Equivalent(c, back)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("QASM round trip not equivalent")
	}
	other := NewCircuit(3)
	other.H(1)
	ok, err = Equivalent(c, other)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("distinct circuits reported equivalent")
	}
}

func TestFacadeAdaptive(t *testing.T) {
	c := SupremacyCircuit(3, 3, 10, 4)
	res, err := Simulate(c, Adaptive(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.State.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v", res.State.Norm())
	}
}

func TestFacadeRealFormat(t *testing.T) {
	c, err := ImportReal(strings.NewReader(".numvars 2\n.variables a b\n.begin\nt1 a\nt2 a b\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 2 {
		t.Fatalf("gates %d", c.GateCount())
	}
	res, err := Simulate(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// X(a); CX(a,b) on |00> → |11>.
	if got := res.State.Amplitude(3); math.Abs(real(got)-1) > 1e-9 {
		t.Fatalf("real-format semantics wrong: %v", got)
	}
	if _, err := ImportReal(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeStateSaveLoad(t *testing.T) {
	c := NewCircuit(4)
	c.H(0).CX(0, 1).CX(1, 2).T(3)
	res, err := Simulate(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveState(&buf, res.State); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	loaded, err := LoadState(&buf, eng)
	if err != nil {
		t.Fatal(err)
	}
	a := res.State.ToVector()
	b := loaded.ToVector()
	for i := range a {
		if d := a[i] - b[i]; math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
			t.Fatalf("amplitude %d changed in save/load", i)
		}
	}
}

func TestFacadeDynamicProgram(t *testing.T) {
	prog, err := ImportDynamicQASM(strings.NewReader(`
qreg q[1];
creg c[1];
h q[0];
measure q[0] -> c[0];
`))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res, err := prog.Run(Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classical > 1 {
		t.Fatalf("classical register %d", res.Classical)
	}
	p := NewDynamicProgram(2, 1)
	if p.NQubits != 2 {
		t.Fatal("NewDynamicProgram dims")
	}
}

func TestFacadeOptimize(t *testing.T) {
	c := NewCircuit(2)
	c.H(0).H(0).CX(0, 1)
	out, stats := Optimize(c)
	if out.GateCount() != 1 || stats.Removed() != 2 {
		t.Fatalf("optimise: %d gates, stats %+v", out.GateCount(), stats)
	}
	ok, err := Equivalent(c, out)
	if err != nil || !ok {
		t.Fatalf("optimised circuit not equivalent: %v %v", ok, err)
	}
}

func TestFacadeTFIM(t *testing.T) {
	m := TFIM{Sites: 4, J: 1, H: 0.5}
	c, err := m.TrotterCircuit(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateOpts(c, Options{UseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.State.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v", res.State.Norm())
	}
	if res.MatVecSteps != 5 {
		t.Fatalf("matvec steps %d, want 5 (one per Trotter step)", res.MatVecSteps)
	}
}
